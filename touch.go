// Package touch is a from-scratch Go implementation of TOUCH — the
// in-memory spatial join by hierarchical data-oriented partitioning of
// Nobari et al. (SIGMOD 2013) — together with every baseline the paper
// evaluates against: nested loop, plane-sweep, PBSM (Patel & DeWitt), S3
// (Koudas & Sevcik), the indexed nested loop join and the synchronous
// R-tree traversal join (Brinkhoff et al.).
//
// The package answers two kinds of queries over 3-D datasets of spatial
// objects approximated by minimum bounding rectangles (MBRs):
//
//   - SpatialJoin: all pairs (a ∈ A, b ∈ B) whose MBRs intersect.
//   - DistanceJoin: all pairs within distance ε (per-dimension), reduced
//     to an intersection join by enlarging one dataset's boxes by ε.
//
// Every join reports the paper's implementation-independent metrics —
// object–object comparisons, filtered objects, analytic memory footprint
// and per-phase timings — through the Stats of its Result.
//
// A minimal distance join:
//
//	a := touch.GenerateUniform(10_000, 1)
//	b := touch.GenerateUniform(40_000, 2)
//	res, err := touch.DistanceJoin(touch.AlgTOUCH, a, b, 5, nil)
//	if err != nil { ... }
//	fmt.Println(len(res.Pairs), res.Stats.Comparisons)
package touch

import (
	"errors"
	"fmt"

	"touch/internal/core"
	"touch/internal/geom"
	"touch/internal/nl"
	"touch/internal/parallel"
	"touch/internal/pbsm"
	"touch/internal/rtree"
	"touch/internal/s3"
	"touch/internal/stats"
	"touch/internal/sweep"
)

// Re-exported geometric types; see the geom package for their methods.
type (
	// ID identifies a spatial object within its dataset.
	ID = geom.ID
	// Point is a location in 3-D space.
	Point = geom.Point
	// Box is an axis-aligned minimum bounding rectangle.
	Box = geom.Box
	// Object is a spatial object: an ID plus its MBR.
	Object = geom.Object
	// Dataset is an unsorted, unindexed collection of objects.
	Dataset = geom.Dataset
	// Pair is one join result: the IDs of the matched objects.
	Pair = geom.Pair
	// Segment is a 3-D line segment.
	Segment = geom.Segment
	// Cylinder is a capsule (segment + radius), the shape of the
	// neuroscience models' neuron branches.
	Cylinder = geom.Cylinder
	// CylinderSet is a dataset with exact cylinder geometry.
	CylinderSet = geom.CylinderSet
	// Stats carries comparison counts, filtering counts, analytic memory
	// footprint and phase timings of one join execution.
	Stats = stats.Counters
	// Sink receives result pairs as they are produced, for streaming
	// consumption without materializing the result set.
	Sink = stats.Sink
	// TOUCHConfig are TOUCH's tunable parameters (partitions, fanout,
	// local-join grid resolution).
	TOUCHConfig = core.Config
	// S3Config is the S3 hierarchy shape (levels, refinement factor).
	S3Config = s3.Config
	// RTreeConfig is the R-tree bulk-load configuration (fanout, leaf
	// capacity) used by the RTree and INL baselines.
	RTreeConfig = rtree.Config
)

// NewBox returns the box spanned by the two corner points, normalizing
// the coordinates so that Min[d] <= Max[d] in every dimension — the
// constructor to use for RangeQuery boxes.
func NewBox(a, b Point) Box { return geom.NewBox(a, b) }

// Algorithm names a spatial-join algorithm.
type Algorithm string

// The eight algorithms of the paper's evaluation (§6). PBSM appears in
// its two evaluated configurations plus a custom-resolution variant.
const (
	// AlgTOUCH is the paper's contribution: hierarchical data-oriented
	// partitioning with grid local joins.
	AlgTOUCH Algorithm = "touch"
	// AlgNL is the nested loop join, the O(n·m) textbook baseline.
	AlgNL Algorithm = "nl"
	// AlgPS is the in-memory plane-sweep join.
	AlgPS Algorithm = "ps"
	// AlgPBSM500 is PBSM with 500 grid cells per dimension (the paper's
	// fastest but most memory-hungry configuration).
	AlgPBSM500 Algorithm = "pbsm-500"
	// AlgPBSM100 is PBSM with 100 grid cells per dimension.
	AlgPBSM100 Algorithm = "pbsm-100"
	// AlgPBSM is PBSM with the resolution from Options.PBSM.
	AlgPBSM Algorithm = "pbsm"
	// AlgS3 is the Size Separation Spatial Join.
	AlgS3 Algorithm = "s3"
	// AlgINL is the indexed nested loop join (R-tree on A, one query per
	// object of B).
	AlgINL Algorithm = "inl"
	// AlgRTree is the synchronous R-tree traversal join.
	AlgRTree Algorithm = "rtree"
	// AlgSeeded is the seeded tree join (Lo & Ravishankar), the
	// one-dataset-indexed approach of the paper's related work (§2.2.2).
	// It is not part of the paper's evaluated set (and therefore not in
	// Algorithms()), but is provided for completeness.
	AlgSeeded Algorithm = "seeded"
)

// Algorithms returns all selectable algorithm names, in the order the
// paper introduces them.
func Algorithms() []Algorithm {
	return []Algorithm{AlgNL, AlgPS, AlgPBSM500, AlgPBSM100, AlgS3, AlgINL, AlgRTree, AlgTOUCH}
}

// Options tunes a join execution. The zero value (or a nil pointer) uses
// the paper's experimental defaults for every algorithm.
type Options struct {
	// TOUCH parameters (partitions, fanout, local grid).
	TOUCH TOUCHConfig
	// PBSM is the grid resolution used by AlgPBSM (cells per dimension).
	PBSM pbsm.Config
	// S3 hierarchy shape.
	S3 S3Config
	// RTree bulk-load shape for AlgRTree and AlgINL.
	RTree RTreeConfig
	// KeepOrder disables the join-order heuristic of §5.2.3. By default
	// the smaller dataset is used to build the index/tree (results are
	// always reported in (A, B) orientation regardless).
	KeepOrder bool
	// NoPairs suppresses materialization of Result.Pairs; the join only
	// counts results (useful for large experiments). Ignored when Sink
	// is set.
	NoPairs bool
	// Sink, when non-nil, receives pairs as they are found instead of
	// Result.Pairs. Pairs are delivered in (A, B) orientation.
	Sink Sink
	// Workers > 1 parallelizes the join with that many goroutines (0 or
	// 1 = single-threaded, the paper's setting). AlgTOUCH — including
	// Index.Join — parallelizes internally: the assignment and join
	// phases shard work across goroutines with no object replication
	// (equivalent to setting Options.TOUCH.Workers); every other
	// algorithm runs under the slab driver of internal/parallel, which
	// splits space into contiguous slabs and suppresses boundary
	// duplicates with an ownership rule.
	Workers int
}

func (o *Options) normalized() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// ErrUnknownAlgorithm is wrapped into the error returned when an
// Algorithm name matches no implemented join; test with errors.Is.
var ErrUnknownAlgorithm = errors.New("touch: unknown algorithm")

// ErrNegativeDistance is wrapped into the error returned when a distance
// join is asked for a negative ε; test with errors.Is. DistanceJoin and
// Index.DistanceJoin share it, so the two paths reject consistently.
var ErrNegativeDistance = errors.New("touch: negative distance")

// ErrInvalidBox is wrapped into the error returned when a box is
// malformed — a query box with NaN coordinates or Min > Max in some
// dimension, or a dataset box with non-finite coordinates rejected by
// the loaders (ReadDataset, DatasetFromBoxes); test with errors.Is.
var ErrInvalidBox = errors.New("touch: invalid box")

// ErrInvalidPoint is wrapped into the error returned when a query point
// has NaN coordinates; test with errors.Is.
var ErrInvalidPoint = errors.New("touch: invalid query point")

// ErrInvalidK is wrapped into the error returned when a kNN query asks
// for fewer than one neighbor; test with errors.Is.
var ErrInvalidK = errors.New("touch: k must be at least 1")

// checkEps validates a distance-join ε.
func checkEps(eps float64) error {
	if eps < 0 {
		return fmt.Errorf("%w %g", ErrNegativeDistance, eps)
	}
	return nil
}

// SpatialJoin finds every pair of objects (a ∈ A, b ∈ B) whose boxes
// intersect, using the selected algorithm. All algorithms produce the
// identical, duplicate-free result set; they differ in the comparisons,
// memory and time recorded in Result.Stats.
func SpatialJoin(alg Algorithm, a, b Dataset, opt *Options) (*Result, error) {
	o := opt.normalized()

	swapped := false
	if !o.KeepOrder && len(b) < len(a) {
		// §5.2.3: the smaller dataset builds the tree/index — it is
		// likely sparser, enabling more filtering, and cheaper to index.
		a, b = b, a
		swapped = true
	}

	res := &Result{}
	var sink Sink
	switch {
	case o.Sink != nil && swapped:
		sink = stats.FuncSink(func(x, y geom.ID) { o.Sink.Emit(y, x) })
	case o.Sink != nil:
		sink = o.Sink
	case o.NoPairs:
		sink = &stats.CountSink{}
	case swapped:
		sink = stats.FuncSink(func(x, y geom.ID) {
			res.Pairs = append(res.Pairs, Pair{A: y, B: x})
		})
	default:
		collect := &stats.CollectSink{}
		sink = collect
		defer func() { res.Pairs = collect.Pairs }()
	}

	join, err := bind(alg, &o)
	if err != nil {
		return nil, err
	}
	if o.Workers > 1 && alg != AlgTOUCH {
		parallel.Join(a, b, o.Workers, join, &res.Stats, sink)
	} else {
		join(a, b, &res.Stats, sink)
	}
	return res, nil
}

// DistanceJoin finds every pair of objects within distance eps of each
// other (per-dimension box distance, the predicate of the paper's
// filtering phase), by enlarging dataset A's boxes by eps and running an
// intersection join. Enlarging either dataset yields the same pair set,
// so the join-order heuristic of SpatialJoin applies unchanged.
func DistanceJoin(alg Algorithm, a, b Dataset, eps float64, opt *Options) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	return SpatialJoin(alg, a.Expand(eps), b, opt)
}

// bind resolves an algorithm name and its options to a JoinFunc.
func bind(alg Algorithm, o *Options) (parallel.JoinFunc, error) {
	switch alg {
	case AlgTOUCH:
		cfg := o.TOUCH
		if cfg.Workers <= 1 && o.Workers > 1 {
			// TOUCH parallelizes internally instead of running under the
			// slab driver: no replication, no boundary-ownership filter.
			cfg.Workers = o.Workers
		}
		return func(a, b Dataset, c *Stats, s Sink) { core.Join(a, b, cfg, c, s) }, nil
	case AlgNL:
		return nl.Join, nil
	case AlgPS:
		return sweep.Join, nil
	case AlgPBSM500:
		return func(a, b Dataset, c *Stats, s Sink) {
			pbsm.Join(a, b, pbsm.Config{Resolution: pbsm.Resolution500}, c, s)
		}, nil
	case AlgPBSM100:
		return func(a, b Dataset, c *Stats, s Sink) {
			pbsm.Join(a, b, pbsm.Config{Resolution: pbsm.Resolution100}, c, s)
		}, nil
	case AlgPBSM:
		cfg := o.PBSM
		return func(a, b Dataset, c *Stats, s Sink) { pbsm.Join(a, b, cfg, c, s) }, nil
	case AlgS3:
		cfg := o.S3
		return func(a, b Dataset, c *Stats, s Sink) { s3.Join(a, b, cfg, c, s) }, nil
	case AlgINL:
		cfg := o.RTree
		return func(a, b Dataset, c *Stats, s Sink) { rtree.INLJoin(a, b, cfg, c, s) }, nil
	case AlgRTree:
		cfg := o.RTree
		return func(a, b Dataset, c *Stats, s Sink) { rtree.SyncJoin(a, b, cfg, c, s) }, nil
	case AlgSeeded:
		cfg := o.RTree
		return func(a, b Dataset, c *Stats, s Sink) { rtree.SeededJoin(a, b, cfg, c, s) }, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownAlgorithm, alg)
	}
}
