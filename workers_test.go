package touch

import (
	"slices"
	"testing"
)

func sortPairSet(ps []Pair) []Pair {
	out := slices.Clone(ps)
	r := Result{Pairs: out}
	r.SortPairs()
	return r.Pairs
}

// TestTOUCHWorkersBitIdentical: AlgTOUCH must emit the identical sorted
// pair set for Workers ∈ {1, 2, 8} and match the AlgNL oracle, on the
// same fixtures api_test.go uses. Run with -race to exercise the
// concurrent assignment and join phases.
func TestTOUCHWorkersBitIdentical(t *testing.T) {
	fixtures := []struct {
		name string
		a, b Dataset
		eps  float64
	}{
		{"clustered", GenerateClustered(300, 41), GenerateClustered(600, 42), 8},
		{"uniform", GenerateUniform(400, 11), GenerateUniform(100, 12), 60},
		{"gaussian", GenerateGaussian(350, 91), GenerateGaussian(700, 92), 10},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			nl, err := DistanceJoin(AlgNL, fx.a, fx.b, fx.eps, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := sortPairSet(nl.Pairs)
			if len(want) == 0 {
				t.Fatal("premise: oracle found no pairs")
			}
			for _, workers := range []int{1, 2, 8} {
				opt := &Options{}
				opt.TOUCH.Workers = workers
				res, err := DistanceJoin(AlgTOUCH, fx.a, fx.b, fx.eps, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got := sortPairSet(res.Pairs); !slices.Equal(got, want) {
					t.Fatalf("workers=%d: %d pairs, oracle %d — sets differ",
						workers, len(got), len(want))
				}
				if res.Stats.Results != int64(len(res.Pairs)) {
					t.Fatalf("workers=%d: Results=%d, pairs=%d",
						workers, res.Stats.Results, len(res.Pairs))
				}
			}
		})
	}
}

// TestWorkersOptionRoutesTOUCHInternally: Options.Workers > 1 on
// AlgTOUCH must use the internal parallel phases (not the slab driver)
// and still produce the oracle pair set.
func TestWorkersOptionRoutesTOUCHInternally(t *testing.T) {
	a := GenerateClustered(300, 141)
	b := GenerateClustered(900, 142)
	seq, err := DistanceJoin(AlgTOUCH, a, b, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := DistanceJoin(AlgTOUCH, a, b, 8, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(sortPairSet(par.Pairs), sortPairSet(seq.Pairs)) {
		t.Fatal("Options.Workers changed the TOUCH result set")
	}
	// The internal path assigns every B object exactly once — no slab
	// replication — so comparisons must match the sequential run (the
	// slab driver would inflate them with boundary duplicates).
	if par.Stats.Comparisons != seq.Stats.Comparisons {
		t.Fatalf("parallel comparisons %d != sequential %d (slab-driver replication?)",
			par.Stats.Comparisons, seq.Stats.Comparisons)
	}
}

// TestIndexParallelJoin: a prebuilt index configured with workers joins
// repeatedly and matches the sequential index result; Options.Workers
// on a sequential index must be honored per call and then dropped.
func TestIndexParallelJoin(t *testing.T) {
	a := GenerateUniform(250, 61)
	seqIdx := BuildIndex(a.Expand(10), TOUCHConfig{Partitions: 32})
	parIdx := BuildIndex(a.Expand(10), TOUCHConfig{Partitions: 32, Workers: 4})
	for seed := int64(70); seed < 73; seed++ {
		b := GenerateUniform(500, seed)
		want := sortPairSet(seqIdx.Join(b, nil).Pairs)
		got := sortPairSet(parIdx.Join(b, nil).Pairs)
		if !slices.Equal(got, want) {
			t.Fatalf("seed %d: parallel index join differs from sequential", seed)
		}
		// Per-call Options.Workers on the sequential index.
		optGot := sortPairSet(seqIdx.Join(b, &Options{Workers: 8}).Pairs)
		if !slices.Equal(optGot, want) {
			t.Fatalf("seed %d: Options.Workers index join differs from sequential", seed)
		}
	}
}
