module touch

go 1.23
