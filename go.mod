module touch

go 1.22
