package touch

import (
	"errors"
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"touch/internal/nl"
)

// queryBox derives a random query box inside the generator universe.
func queryBox(rng *rand.Rand) Box {
	var lo, hi Point
	for d := 0; d < 3; d++ {
		lo[d] = rng.Float64() * 1000
		hi[d] = lo[d] + rng.Float64()*rng.Float64()*300
	}
	return NewBox(lo, hi)
}

func queryPoint(rng *rand.Rand) Point {
	return Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
}

// TestIndexQueriesMatchOracle is the acceptance bar of this PR's query
// engine: RangeQuery, PointQuery and KNN must be bit-identical to the
// brute-force oracles on 24 seeded random datasets spanning all three
// generators — including kNN distance ties, which the all-identical
// degenerate dataset of the differential harness covers separately.
func TestIndexQueriesMatchOracle(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		var ds Dataset
		switch seed % 3 {
		case 0:
			ds = GenerateUniform(400+int(seed)*37, seed)
		case 1:
			ds = GenerateGaussian(400+int(seed)*37, seed)
		default:
			ds = GenerateClustered(400+int(seed)*37, seed)
		}
		ix := BuildIndex(ds, TOUCHConfig{})
		rng := rand.New(rand.NewSource(seed * 7919))
		for i := 0; i < 10; i++ {
			q := queryBox(rng)
			got, err := ix.RangeQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if want := nl.RangeQuery(ds, q); !slices.Equal(got, want) {
				t.Fatalf("seed %d: RangeQuery(%v): got %d ids, want %d", seed, q, len(got), len(want))
			}

			pt := queryPoint(rng)
			gotPt, err := ix.PointQuery(pt[0], pt[1], pt[2])
			if err != nil {
				t.Fatal(err)
			}
			if want := nl.PointQuery(ds, pt); !slices.Equal(gotPt, want) {
				t.Fatalf("seed %d: PointQuery(%v): got %v, want %v", seed, pt, gotPt, want)
			}

			k := 1 + rng.Intn(20)
			gotNbrs, err := ix.KNN(pt, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := nl.KNN(ds, pt, k); !slices.Equal(gotNbrs, want) {
				t.Fatalf("seed %d: KNN(%v, %d) diverged from oracle", seed, pt, k)
			}
		}
	}
}

// TestQueryArgumentErrors: malformed boxes, NaN points and k < 1 must be
// rejected with the matching sentinel errors, before any traversal.
func TestQueryArgumentErrors(t *testing.T) {
	ix := BuildIndex(GenerateUniform(50, 1), TOUCHConfig{})
	nan := math.NaN()

	if _, err := ix.RangeQuery(Box{Min: Point{1, 1, 1}, Max: Point{0, 2, 2}}); !errors.Is(err, ErrInvalidBox) {
		t.Fatalf("inverted box: got %v, want ErrInvalidBox", err)
	}
	if _, err := ix.RangeQuery(Box{Min: Point{nan, 0, 0}, Max: Point{1, 1, 1}}); !errors.Is(err, ErrInvalidBox) {
		t.Fatalf("NaN box: got %v, want ErrInvalidBox", err)
	}
	if _, err := ix.PointQuery(nan, 0, 0); !errors.Is(err, ErrInvalidPoint) {
		t.Fatalf("NaN point: got %v, want ErrInvalidPoint", err)
	}
	if _, err := ix.KNN(Point{0, nan, 0}, 3); !errors.Is(err, ErrInvalidPoint) {
		t.Fatalf("NaN kNN point: got %v, want ErrInvalidPoint", err)
	}
	for _, k := range []int{0, -1} {
		if _, err := ix.KNN(Point{1, 2, 3}, k); !errors.Is(err, ErrInvalidK) {
			t.Fatalf("k=%d: got %v, want ErrInvalidK", k, err)
		}
	}

	// Valid calls still work on the same index afterwards.
	if _, err := ix.RangeQuery(NewBox(Point{0, 0, 0}, Point{1000, 1000, 1000})); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueries: 8 goroutines fire a mixed range/point/kNN
// workload at one shared Index under -race; every answer must equal the
// precomputed sequential reference.
func TestConcurrentQueries(t *testing.T) {
	const goroutines = 8
	const queriesPer = 40

	ds := GenerateClustered(2_000, 991)
	ix := BuildIndex(ds, TOUCHConfig{})

	type want struct {
		box  Box
		pt   Point
		k    int
		ids  []ID
		pts  []ID
		nbrs []Neighbor
	}
	refs := make([][]want, goroutines)
	for g := range refs {
		rng := rand.New(rand.NewSource(int64(1000 + g)))
		refs[g] = make([]want, queriesPer)
		for i := range refs[g] {
			w := want{box: queryBox(rng), pt: queryPoint(rng), k: 1 + rng.Intn(16)}
			w.ids = nl.RangeQuery(ds, w.box)
			w.pts = nl.PointQuery(ds, w.pt)
			w.nbrs = nl.KNN(ds, w.pt, w.k)
			refs[g][i] = w
		}
	}

	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, w := range refs[g] {
				ids, err := ix.RangeQuery(w.box)
				if err != nil {
					errs <- err
					return
				}
				if !slices.Equal(ids, w.ids) {
					errs <- errors.New("concurrent RangeQuery diverged from sequential reference")
					return
				}
				pts, err := ix.PointQuery(w.pt[0], w.pt[1], w.pt[2])
				if err != nil {
					errs <- err
					return
				}
				if !slices.Equal(pts, w.pts) {
					errs <- errors.New("concurrent PointQuery diverged from sequential reference")
					return
				}
				nbrs, err := ix.KNN(w.pt, w.k)
				if err != nil {
					errs <- err
					return
				}
				if !slices.Equal(nbrs, w.nbrs) {
					errs <- errors.New("concurrent KNN diverged from sequential reference")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesAndJoins: queries and joins interleave on one
// shared Index — the mixed workload of the serving scenario — without
// interference.
func TestConcurrentQueriesAndJoins(t *testing.T) {
	a := GenerateUniform(800, 551).Expand(5)
	b := GenerateUniform(1_200, 552)
	ix := BuildIndex(a, TOUCHConfig{})

	q := NewBox(Point{100, 100, 100}, Point{400, 400, 400})
	wantIDs := nl.RangeQuery(a, q)
	wantJoin := ix.Join(b, nil).Stats.Results

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ids, err := ix.RangeQuery(q)
				if err != nil {
					errs <- err
					return
				}
				if !slices.Equal(ids, wantIDs) {
					errs <- errors.New("RangeQuery diverged while joins ran")
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				res := ix.Join(b, &Options{NoPairs: true})
				if res.Stats.Results != wantJoin {
					errs <- errors.New("Join diverged while queries ran")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
