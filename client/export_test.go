package client

// DialAttempts reports how many dials the pool has started — the
// observable the dial-backoff regression test pins.
func (p *Pool) DialAttempts() int64 { return p.dials.Load() }
