package client_test

import (
	"context"
	"net"
	"testing"
	"time"

	"touch"
	"touch/client"
	"touch/internal/server"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Config{})
	srv.Load("d", touch.GenerateUniform(200, 1), touch.TOUCHConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.ShutdownWire(ctx)
	})
	return ln.Addr().String()
}

// TestServerNodeAndCatalog: a server with a node ID advertises it in
// the hello info ("node/<id>"), ServerNode parses it back, and the wire
// catalog listing mirrors what the server is actually serving.
func TestServerNodeAndCatalog(t *testing.T) {
	srv := server.New(server.Config{NodeID: "replica-7"})
	srv.Load("d", touch.GenerateUniform(200, 1), touch.TOUCHConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.ShutdownWire(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := client.Dial(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ServerNode(); got != "replica-7" {
		t.Fatalf("ServerNode = %q (info %q), want %q", got, c.ServerInfo(), "replica-7")
	}
	infos, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "d" || infos[0].Objects != 200 || infos[0].Status != "ready" {
		t.Fatalf("Datasets = %+v, want one ready row for %q with 200 objects", infos, "d")
	}
}

// TestServerNodeAbsent: servers without a node ID yield "".
func TestServerNodeAbsent(t *testing.T) {
	addr := startServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ServerNode(); got != "" {
		t.Fatalf("ServerNode = %q, want empty for a server without -node-id", got)
	}
}

// TestPool: at most size connections, shared round-robin, dead ones
// replaced on the next checkout.
func TestPool(t *testing.T) {
	addr := startServer(t)
	p := client.NewPool(addr, 2)
	defer p.Close()
	ctx := context.Background()

	box := touch.Box{Max: touch.Point{500, 500, 500}}
	seen := map[*client.Conn]bool{}
	for i := 0; i < 6; i++ {
		c, err := p.Conn(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[c] = true
		if _, _, err := c.Range(ctx, "d", box); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("pool used %d connections, want 2", len(seen))
	}

	var dead *client.Conn
	for c := range seen {
		dead = c
		break
	}
	dead.Close()
	replaced := false
	for i := 0; i < 4; i++ {
		c, err := p.Conn(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c == dead {
			t.Fatal("pool handed out a closed connection")
		}
		if !seen[c] {
			replaced = true
		}
		if _, _, err := c.Range(ctx, "d", box); err != nil {
			t.Fatal(err)
		}
	}
	if !replaced {
		t.Fatal("pool never replaced the dead connection")
	}
}

// TestConnSharedPipelining: many goroutines multiplexing one connection
// each get their own correct answer.
func TestConnSharedPipelining(t *testing.T) {
	addr := startServer(t)
	ctx := context.Background()
	c, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, want, err := c.Range(ctx, "d", touch.Box{Max: touch.Point{500, 500, 500}})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				_, ids, err := c.Range(ctx, "d", touch.Box{Max: touch.Point{500, 500, 500}})
				if err == nil && len(ids) != len(want) {
					err = context.DeadlineExceeded // any sentinel: wrong answer
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
