package client

import (
	"context"

	"touch"
	"touch/internal/wire"
)

// Batch queues requests for one pipelined send: every queued request is
// encoded into a shared buffer, and Send writes them all with a single
// flush. Each queue call returns a future; Get blocks until that
// request's response arrives (so futures may be harvested in any
// order, though responses arrive in queue order). A Batch is not safe
// for concurrent use; futures are.
//
// Queue, Send, harvest, then reuse the Batch for the next round —
// the encode buffer is retained, so steady-state batches allocate only
// the per-request bookkeeping.
type Batch struct {
	c    *Conn
	buf  []byte
	reqs []batchReq
	err  error
}

type batchReq struct {
	op       byte
	tag      uint32
	off, end int
}

// Batch returns an empty batch on this connection.
func (c *Conn) Batch() *Batch { return &Batch{c: c} }

// Len reports how many requests are queued and unsent.
func (b *Batch) Len() int { return len(b.reqs) }

func (b *Batch) add(op byte, encode func([]byte) []byte) future {
	if b.err != nil {
		return future{err: b.err}
	}
	tag, cl, err := b.c.register()
	if err != nil {
		b.err = err
		return future{err: err}
	}
	off := len(b.buf)
	b.buf = encode(b.buf)
	b.reqs = append(b.reqs, batchReq{op: op, tag: tag, off: off, end: len(b.buf)})
	return future{c: b.c, tag: tag, call: cl}
}

// Range queues a range query.
func (b *Batch) Range(dataset string, box touch.Box) IDsFuture {
	return IDsFuture{b.add(wire.OpRange, func(dst []byte) []byte {
		return wire.AppendRangeReq(dst, dataset, box)
	})}
}

// Point queues a point query.
func (b *Batch) Point(dataset string, pt touch.Point) IDsFuture {
	return IDsFuture{b.add(wire.OpPoint, func(dst []byte) []byte {
		return wire.AppendPointReq(dst, dataset, pt)
	})}
}

// KNN queues a k-nearest-neighbors query.
func (b *Batch) KNN(dataset string, pt touch.Point, k int) NeighborsFuture {
	return NeighborsFuture{b.add(wire.OpKNN, func(dst []byte) []byte {
		return wire.AppendKNNReq(dst, dataset, pt, k)
	})}
}

// JoinCount queues a count-only join.
func (b *Batch) JoinCount(dataset string, spec JoinSpec) CountFuture {
	return CountFuture{b.add(wire.OpJoin, func(dst []byte) []byte {
		return wire.AppendJoinReq(dst, dataset, spec.Eps, spec.Workers, true, spec.Probe, spec.Boxes)
	})}
}

// Join queues a pair-materializing join.
func (b *Batch) Join(dataset string, spec JoinSpec) JoinFuture {
	return JoinFuture{b.add(wire.OpJoin, func(dst []byte) []byte {
		return wire.AppendJoinReq(dst, dataset, spec.Eps, spec.Workers, false, spec.Probe, spec.Boxes)
	})}
}

// Update queues an incremental-update batch. Updates execute in queue
// order on the server, so a query queued after an update in the same
// batch observes it.
func (b *Batch) Update(dataset string, spec UpdateSpec) UpdateFuture {
	return UpdateFuture{b.add(wire.OpUpdate, func(dst []byte) []byte {
		return wire.AppendUpdateReq(dst, dataset, spec.Delete, spec.Insert)
	})}
}

// Send writes every queued request in one burst with one flush, then
// resets the batch for reuse. It does not wait for responses — harvest
// the futures. On a write error the connection is poisoned and every
// queued future fails.
func (b *Batch) Send() error {
	if b.err != nil {
		err := b.err
		b.reqs, b.buf, b.err = b.reqs[:0], b.buf[:0], nil
		return err
	}
	c := b.c
	c.wmu.Lock()
	var err error
	for _, r := range b.reqs {
		if err = c.w.WriteFrame(r.op, r.tag, b.buf[r.off:r.end]); err != nil {
			break
		}
	}
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	b.reqs, b.buf = b.reqs[:0], b.buf[:0]
	if err != nil {
		c.fail(err)
		return err
	}
	return nil
}

// future is the shared blocking half of the typed futures below.
type future struct {
	c    *Conn
	tag  uint32
	call *call
	err  error // queue-time failure: Get reports it without blocking
}

func (f *future) wait(ctx context.Context) (*call, error) {
	if f.err != nil {
		return nil, f.err
	}
	return f.c.wait(ctx, f.tag, f.call)
}

// IDsFuture resolves to a range or point query's answer.
type IDsFuture struct{ f future }

func (f IDsFuture) Get(ctx context.Context) (version int64, ids []touch.ID, err error) {
	cl, err := f.f.wait(ctx)
	if err != nil {
		return 0, nil, err
	}
	return decodeIDs(cl)
}

// NeighborsFuture resolves to a kNN query's answer.
type NeighborsFuture struct{ f future }

func (f NeighborsFuture) Get(ctx context.Context) (version int64, nbrs []touch.Neighbor, err error) {
	cl, err := f.f.wait(ctx)
	if err != nil {
		return 0, nil, err
	}
	return decodeNeighbors(cl)
}

// CountFuture resolves to a count-only join's answer.
type CountFuture struct{ f future }

func (f CountFuture) Get(ctx context.Context) (version, count int64, err error) {
	cl, err := f.f.wait(ctx)
	if err != nil {
		return 0, 0, err
	}
	return decodeCount(cl)
}

// UpdateFuture resolves to an update batch's result.
type UpdateFuture struct{ f future }

func (f UpdateFuture) Get(ctx context.Context) (UpdateResult, error) {
	cl, err := f.f.wait(ctx)
	if err != nil {
		return UpdateResult{}, err
	}
	return decodeUpdate(cl)
}

// JoinFuture resolves to a materialized join's answer, pairs sorted
// canonically.
type JoinFuture struct{ f future }

func (f JoinFuture) Get(ctx context.Context) (version int64, pairs []touch.Pair, count int64, err error) {
	cl, err := f.f.wait(ctx)
	if err != nil {
		return 0, nil, 0, err
	}
	return decodeJoin(cl)
}
