package client

import (
	"context"
	"sync"
)

// Pool hands out up to size multiplexed connections round-robin.
// Because a Conn pipelines concurrent requests, connections are shared,
// not checked out exclusively — Conn(ctx) just picks one, dialing
// lazily and replacing any that have failed. There is no Put.
type Pool struct {
	addr string
	size int

	mu     sync.Mutex
	conns  []*Conn
	next   int
	closed bool
}

// NewPool returns a pool of at most size connections to addr. Nothing
// is dialed until the first Conn call.
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = 1
	}
	return &Pool{addr: addr, size: size}
}

// Conn returns a healthy pooled connection, dialing if the pool is not
// yet full or a pooled connection has failed. The dial happens outside
// the pool lock — a slow or hanging dial must not block other callers
// from using the healthy connections already pooled — and when it fails
// but a live connection exists, that connection is returned instead of
// the dial error: the pool just serves below capacity until the next
// call retries the dial.
func (p *Pool) Conn(ctx context.Context) (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	live := p.conns[:0]
	for _, c := range p.conns {
		if c.Err() == nil {
			live = append(live, c)
		} else {
			c.Close()
		}
	}
	p.conns = live
	if len(p.conns) >= p.size {
		p.next++
		c := p.conns[p.next%len(p.conns)]
		p.mu.Unlock()
		return c, nil
	}
	// Snapshot a round-robin fallback before unlocking: if the dial
	// fails, a healthy connection still answers this call.
	var fallback *Conn
	if len(p.conns) > 0 {
		p.next++
		fallback = p.conns[p.next%len(p.conns)]
	}
	p.mu.Unlock()

	c, err := Dial(ctx, p.addr)
	if err != nil {
		if fallback != nil {
			return fallback, nil
		}
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return nil, ErrClosed
	}
	// Concurrent callers may have filled the pool while we dialed; a
	// connection the pool doesn't retain would leak, so prefer a pooled
	// one and close the extra dial.
	if len(p.conns) >= p.size {
		c.Close()
		p.next++
		return p.conns[p.next%len(p.conns)], nil
	}
	p.conns = append(p.conns, c)
	return c, nil
}

// Close closes every pooled connection; outstanding requests on them
// fail with ErrClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	return nil
}
