package client

import (
	"context"
	"sync"
)

// Pool hands out up to size multiplexed connections round-robin.
// Because a Conn pipelines concurrent requests, connections are shared,
// not checked out exclusively — Conn(ctx) just picks one, dialing
// lazily and replacing any that have failed. There is no Put.
type Pool struct {
	addr string
	size int

	mu     sync.Mutex
	conns  []*Conn
	next   int
	closed bool
}

// NewPool returns a pool of at most size connections to addr. Nothing
// is dialed until the first Conn call.
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = 1
	}
	return &Pool{addr: addr, size: size}
}

// Conn returns a healthy pooled connection, dialing if the pool is not
// yet full or a pooled connection has failed.
func (p *Pool) Conn(ctx context.Context) (*Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	live := p.conns[:0]
	for _, c := range p.conns {
		if c.Err() == nil {
			live = append(live, c)
		} else {
			c.Close()
		}
	}
	p.conns = live
	if len(p.conns) < p.size {
		c, err := Dial(ctx, p.addr)
		if err != nil {
			return nil, err
		}
		p.conns = append(p.conns, c)
		return c, nil
	}
	p.next++
	return p.conns[p.next%len(p.conns)], nil
}

// Close closes every pooled connection; outstanding requests on them
// fail with ErrClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	return nil
}
