package client

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Dial-backoff bounds: after a failed dial the pool waits dialBackoffMin
// before trying again, doubling per consecutive failure up to
// dialBackoffMax. A dead backend then costs each caller a cached error,
// not a connect attempt — a routing tier retrying hundreds of requests
// per second against an ejected backend must not turn into a SYN storm.
const (
	dialBackoffMin = 100 * time.Millisecond
	dialBackoffMax = 3 * time.Second
)

// Pool hands out up to size multiplexed connections round-robin.
// Because a Conn pipelines concurrent requests, connections are shared,
// not checked out exclusively — Conn(ctx) just picks one, dialing
// lazily and replacing any that have failed. There is no Put.
type Pool struct {
	addr string
	size int

	mu     sync.Mutex
	conns  []*Conn
	next   int
	closed bool

	// Dial-backoff state, guarded by mu: consecutive failed dials, the
	// earliest time the next dial may start, and the error served while
	// waiting. A successful dial resets all three.
	dialFails int
	nextDial  time.Time
	lastErr   error

	// dials counts dial attempts, for the backoff regression test.
	dials atomic.Int64
}

// NewPool returns a pool of at most size connections to addr. Nothing
// is dialed until the first Conn call.
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = 1
	}
	return &Pool{addr: addr, size: size}
}

// Addr returns the address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Healthy reports whether the pool currently holds at least one live
// connection. It never dials, so false also covers a pool that simply
// has not seen traffic yet; after traffic, false means every pooled
// connection has failed since.
func (p *Pool) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		if c.Err() == nil {
			return true
		}
	}
	return false
}

// Conn returns a healthy pooled connection, dialing if the pool is not
// yet full or a pooled connection has failed. The dial happens outside
// the pool lock — a slow or hanging dial must not block other callers
// from using the healthy connections already pooled — and when it fails
// but a live connection exists, that connection is returned instead of
// the dial error: the pool just serves below capacity until the next
// call retries the dial. While the dial-backoff window from a previous
// failure is open no dial is attempted at all: the call gets the
// fallback connection, or the cached dial error when none exists.
func (p *Pool) Conn(ctx context.Context) (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	live := p.conns[:0]
	for _, c := range p.conns {
		if c.Err() == nil {
			live = append(live, c)
		} else {
			c.Close()
		}
	}
	p.conns = live
	if len(p.conns) >= p.size {
		p.next++
		c := p.conns[p.next%len(p.conns)]
		p.mu.Unlock()
		return c, nil
	}
	// Snapshot a round-robin fallback before unlocking: if the dial
	// fails, a healthy connection still answers this call.
	var fallback *Conn
	if len(p.conns) > 0 {
		p.next++
		fallback = p.conns[p.next%len(p.conns)]
	}
	if wait, lastErr := time.Until(p.nextDial), p.lastErr; wait > 0 && lastErr != nil {
		p.mu.Unlock()
		if fallback != nil {
			return fallback, nil
		}
		return nil, lastErr
	}
	p.mu.Unlock()

	p.dials.Add(1)
	c, err := Dial(ctx, p.addr)
	if err != nil {
		p.noteDialFailure(err)
		if fallback != nil {
			return fallback, nil
		}
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dialFails, p.nextDial, p.lastErr = 0, time.Time{}, nil
	if p.closed {
		c.Close()
		return nil, ErrClosed
	}
	// Concurrent callers may have filled the pool while we dialed; a
	// connection the pool doesn't retain would leak, so prefer a pooled
	// one and close the extra dial.
	if len(p.conns) >= p.size {
		c.Close()
		p.next++
		return p.conns[p.next%len(p.conns)], nil
	}
	p.conns = append(p.conns, c)
	return c, nil
}

// noteDialFailure opens (or extends) the dial-backoff window.
func (p *Pool) noteDialFailure(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	backoff := dialBackoffMin << p.dialFails
	if backoff > dialBackoffMax {
		backoff = dialBackoffMax
	}
	// Cap the exponent well before the doubling could overflow; the
	// window is already clamped to dialBackoffMax by then.
	if p.dialFails < 8 {
		p.dialFails++
	}
	p.nextDial = time.Now().Add(backoff)
	p.lastErr = err
}

// Close closes every pooled connection; outstanding requests on them
// fail with ErrClosed. Close is idempotent — later calls are no-ops.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	return nil
}
