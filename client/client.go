// Package client is the Go client for touchserved's binary wire
// protocol (internal/wire): length-prefixed frames over a persistent
// TCP connection, with client-side pipelining.
//
// A Conn is safe for concurrent use and multiplexes every request over
// one connection: each request carries a tag, responses are matched by
// tag, and in-order execution on the server means no response ever
// waits behind bookkeeping here. Two usage patterns:
//
//   - Unary calls (Range, Point, KNN, Join, JoinCount) write one frame,
//     flush, and wait. Concurrent goroutines sharing a Conn pipeline
//     naturally — nobody waits for anyone else's response.
//   - A Batch queues many requests and sends them with one write and
//     one flush; each queued request returns a future whose Get blocks
//     until its response arrives. This is the deep-pipelining mode that
//     amortizes the round trip and the syscalls, and is where the
//     protocol's throughput over HTTP/JSON comes from.
//
// Canceling a request's context sends a cancel frame for its tag and
// then waits for the guaranteed terminal response — the server frees
// the request's admission slot on abort, and the connection stays
// usable. A connection-level error fails every outstanding request
// with the same error and poisons the Conn; Pool replaces poisoned
// connections on the next checkout.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"touch"
	"touch/internal/trace"
	"touch/internal/wire"
)

// ErrClosed is returned for requests on a closed connection or pool.
var ErrClosed = errors.New("client: connection closed")

// ServerError is a structured error frame from the server — the binary
// twin of the HTTP JSON error body. Code holds the machine-readable
// error vocabulary shared with HTTP ("unknown_dataset", "timeout",
// "overload", ...).
type ServerError struct {
	Code    string
	Message string
}

func (e *ServerError) Error() string { return fmt.Sprintf("server: %s: %s", e.Code, e.Message) }

// call is one in-flight request: the reader goroutine fills it and
// closes done exactly once.
type call struct {
	done     chan struct{}
	op       byte
	payload  []byte
	pairs    []touch.Pair // accumulated OpPairs batches (joins)
	pairsErr error
	trace    *wire.TraceResp // OpTrace trailer, when the request asked for one
	traceErr error
	err      error // connection-level failure
}

// Conn is one binary-protocol connection. Safe for concurrent use.
type Conn struct {
	nc net.Conn
	w  *wire.Writer

	// serverInfo is the free-text build identification the server sent in
	// its hello frame ("touchserved/v1.2.3 rev/abc... go1.x"); empty for
	// servers predating the info field.
	serverInfo string

	// wmu serializes frame writes and flushes.
	wmu sync.Mutex

	// mu guards the tag space and the pending-call table.
	mu      sync.Mutex
	pending map[uint32]*call
	nextTag uint32
	err     error // sticky; set once by fail
}

// ServerInfo returns the server's hello-frame build identification,
// empty when the server did not send one.
func (c *Conn) ServerInfo() string { return c.serverInfo }

// ServerNode returns the server's stable instance name — the "node/<id>"
// token of its hello info (touchserved -node-id) — or "" when the server
// did not advertise one. Routing tiers key logs and per-backend metrics
// on it.
func (c *Conn) ServerNode() string {
	for _, f := range strings.Fields(c.serverInfo) {
		if id, ok := strings.CutPrefix(f, "node/"); ok {
			return id
		}
	}
	return ""
}

// Dial connects and performs the protocol handshake. The context bounds
// dialing and the handshake only; it does not govern the connection's
// lifetime.
func Dial(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl)
	}
	c := &Conn{nc: nc, w: wire.NewWriter(nc), pending: make(map[uint32]*call)}
	r := wire.NewReader(nc, 0)
	if err := c.w.WriteHello("touchclient/go"); err == nil {
		err = c.w.Flush()
	} else {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	v, info, err := r.ReadHello()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	c.serverInfo = info
	if v != wire.Version {
		nc.Close()
		return nil, fmt.Errorf("client: server speaks protocol version %d, this client speaks %d", v, wire.Version)
	}
	nc.SetDeadline(time.Time{})
	go c.readLoop(r)
	return c, nil
}

// Close tears the connection down; every outstanding request fails
// with ErrClosed.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Err returns the connection's sticky error, nil while it is usable.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fail poisons the connection: the first error sticks, every pending
// call completes with it, and the socket closes (which also stops the
// reader).
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	calls := c.pending
	c.pending = make(map[uint32]*call)
	c.mu.Unlock()
	c.nc.Close()
	for _, cl := range calls {
		cl.err = err
		close(cl.done)
	}
}

// readLoop is the connection's single reader: it matches every response
// frame to its pending call by tag. Non-terminal frames — OpPairs
// batches and the OpTrace trailer — accumulate on the call; any other
// opcode completes it.
func (c *Conn) readLoop(r *wire.Reader) {
	for {
		op, tag, payload, err := r.ReadFrame()
		if err != nil {
			c.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		nonTerminal := op == wire.OpPairs || op == wire.OpTrace
		c.mu.Lock()
		cl := c.pending[tag]
		if !nonTerminal {
			delete(c.pending, tag)
		}
		c.mu.Unlock()
		if cl == nil {
			// A response for a tag nobody waits on: the server answered
			// something this client never sent, or answered twice.
			c.fail(fmt.Errorf("client: response for unknown tag %d (opcode %#02x)", tag, op))
			return
		}
		switch op {
		case wire.OpPairs:
			if cl.pairsErr == nil {
				cl.pairs, cl.pairsErr = wire.DecodePairsResp(payload, cl.pairs)
			}
			continue
		case wire.OpTrace:
			tr, err := wire.DecodeTraceResp(payload)
			if err != nil {
				cl.traceErr = err
			} else {
				cl.trace = &tr
			}
			continue
		}
		cl.op = op
		cl.payload = append([]byte(nil), payload...)
		close(cl.done)
	}
}

// register allocates a tag and its pending call. Tags are monotonic per
// connection (wrapping at 2³²), never reused while in flight, so a
// cancel frame racing its own response cannot poison a later request.
func (c *Conn) register() (uint32, *call, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	c.nextTag++
	cl := &call{done: make(chan struct{})}
	c.pending[c.nextTag] = cl
	return c.nextTag, cl, nil
}

func (c *Conn) sendCancel(tag uint32) {
	c.wmu.Lock()
	if c.w.WriteFrame(wire.OpCancel, tag, nil) == nil {
		_ = c.w.Flush()
	}
	c.wmu.Unlock()
}

// wait blocks until the call completes. A context cancellation sends a
// cancel frame and keeps waiting for the guaranteed terminal response
// (or the connection's death) — then reports the context's error.
func (c *Conn) wait(ctx context.Context, tag uint32, cl *call) (*call, error) {
	select {
	case <-cl.done:
		return cl, cl.err
	case <-ctx.Done():
		c.sendCancel(tag)
		<-cl.done
		if cl.err != nil {
			return cl, cl.err
		}
		return cl, ctx.Err()
	}
}

// roundTrip is the unary path: one frame out, flushed, one terminal
// response waited for.
func (c *Conn) roundTrip(ctx context.Context, op byte, payload []byte) (*call, error) {
	tag, cl, err := c.register()
	if err != nil {
		return nil, err
	}
	c.wmu.Lock()
	if err = c.w.WriteFrame(op, tag, payload); err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("client: write: %w", err))
		return nil, err
	}
	return c.wait(ctx, tag, cl)
}

// --- response decoding ----------------------------------------------------

func respError(cl *call) error {
	if cl.op != wire.OpError {
		return nil
	}
	code, msg, err := wire.DecodeErrorResp(cl.payload)
	if err != nil {
		return fmt.Errorf("client: bad error frame: %w", err)
	}
	return &ServerError{Code: code, Message: msg}
}

func decodeIDs(cl *call) (int64, []touch.ID, error) {
	if err := respError(cl); err != nil {
		return 0, nil, err
	}
	if cl.op != wire.OpIDs {
		return 0, nil, fmt.Errorf("client: unexpected response opcode %#02x", cl.op)
	}
	return wire.DecodeIDsResp(cl.payload)
}

func decodeNeighbors(cl *call) (int64, []touch.Neighbor, error) {
	if err := respError(cl); err != nil {
		return 0, nil, err
	}
	if cl.op != wire.OpNeighbors {
		return 0, nil, fmt.Errorf("client: unexpected response opcode %#02x", cl.op)
	}
	return wire.DecodeNeighborsResp(cl.payload)
}

func decodeCount(cl *call) (int64, int64, error) {
	if err := respError(cl); err != nil {
		return 0, 0, err
	}
	if cl.op != wire.OpCount {
		return 0, 0, fmt.Errorf("client: unexpected response opcode %#02x", cl.op)
	}
	return wire.DecodeCountResp(cl.payload)
}

// decodeJoin finishes a streaming join: pairs were accumulated by the
// reader, OpJoinDone carries the version and total. Pairs are sorted
// into the canonical (indexed, probe) ascending order the HTTP path
// uses, so the two transports answer byte-identically.
func decodeJoin(cl *call) (version int64, pairs []touch.Pair, count int64, err error) {
	if err := respError(cl); err != nil {
		return 0, nil, 0, err
	}
	if cl.op != wire.OpJoinDone {
		return 0, nil, 0, fmt.Errorf("client: unexpected response opcode %#02x", cl.op)
	}
	if cl.pairsErr != nil {
		return 0, nil, 0, fmt.Errorf("client: bad pairs frame: %w", cl.pairsErr)
	}
	version, count, err = wire.DecodeJoinDoneResp(cl.payload)
	if err != nil {
		return 0, nil, 0, err
	}
	if count != int64(len(cl.pairs)) {
		return 0, nil, 0, fmt.Errorf("client: join stream carried %d pairs but the trailer counts %d", len(cl.pairs), count)
	}
	pairs = cl.pairs
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return version, pairs, count, nil
}

func decodeUpdate(cl *call) (UpdateResult, error) {
	if err := respError(cl); err != nil {
		return UpdateResult{}, err
	}
	if cl.op != wire.OpUpdateDone {
		return UpdateResult{}, fmt.Errorf("client: unexpected response opcode %#02x", cl.op)
	}
	r, err := wire.DecodeUpdateResp(cl.payload)
	if err != nil {
		return UpdateResult{}, err
	}
	res := UpdateResult{
		Version: r.Version, Deleted: r.Deleted,
		DeltaInserts: r.DeltaInserts, DeltaTombstones: r.DeltaTombstones,
	}
	if r.FirstID >= 0 {
		res.InsertedIDs = make([]touch.ID, r.Inserted)
		for i := range res.InsertedIDs {
			res.InsertedIDs[i] = touch.ID(r.FirstID) + touch.ID(i)
		}
	}
	return res, nil
}

// --- tracing --------------------------------------------------------------

// Trace is the per-request engine trace the server returns when a
// request asks for one (the wire twin of the HTTP X-Touch-Trace
// response field): the server-assigned request ID, wall time per engine
// phase, and the engine's work counters for exactly this request.
type Trace struct {
	// RequestID is the server-assigned identifier, usable to correlate
	// with server logs and the slow-query log.
	RequestID string
	// PhaseNs holds nanoseconds spent per engine phase, keyed by phase
	// name ("admission", "decode", "join", ...); phases the request never
	// entered are absent.
	PhaseNs map[string]int64

	Comparisons int64
	NodeTests   int64
	Filtered    int64
	Results     int64
	Replicas    int64
	// Cancel names why the engine stopped early, "" for a complete run.
	Cancel string
}

// callTrace converts an accumulated OpTrace trailer. A missing or
// malformed trailer yields nil — tracing is best-effort diagnostics and
// never fails the request it rides on.
func callTrace(cl *call) *Trace {
	if cl.trace == nil || cl.traceErr != nil {
		return nil
	}
	t := &Trace{
		RequestID:   cl.trace.RequestID,
		PhaseNs:     make(map[string]int64),
		Comparisons: cl.trace.Comparisons,
		NodeTests:   cl.trace.NodeTests,
		Filtered:    cl.trace.Filtered,
		Results:     cl.trace.Results,
		Replicas:    cl.trace.Replicas,
		Cancel:      trace.CancelName(int32(cl.trace.Cancel)),
	}
	for i, ns := range cl.trace.PhaseNs {
		if ns > 0 && i < int(trace.NumPhases) {
			t.PhaseNs[trace.Phase(i).Name()] = ns
		}
	}
	return t
}

// --- unary API ------------------------------------------------------------

// Range returns the IDs of indexed objects intersecting the box, and
// the dataset version that answered.
func (c *Conn) Range(ctx context.Context, dataset string, b touch.Box) (version int64, ids []touch.ID, err error) {
	cl, err := c.roundTrip(ctx, wire.OpRange, wire.AppendRangeReq(nil, dataset, b))
	if err != nil {
		return 0, nil, err
	}
	return decodeIDs(cl)
}

// RangeTraced is Range with per-request tracing: the server returns its
// engine trace alongside the result.
func (c *Conn) RangeTraced(ctx context.Context, dataset string, b touch.Box) (version int64, ids []touch.ID, tr *Trace, err error) {
	cl, err := c.roundTrip(ctx, wire.OpRange, wire.AppendRangeReqFlags(nil, dataset, b, wire.QueryFlagTrace))
	if err != nil {
		return 0, nil, nil, err
	}
	version, ids, err = decodeIDs(cl)
	return version, ids, callTrace(cl), err
}

// Point returns the IDs of indexed objects containing the point.
func (c *Conn) Point(ctx context.Context, dataset string, pt touch.Point) (version int64, ids []touch.ID, err error) {
	cl, err := c.roundTrip(ctx, wire.OpPoint, wire.AppendPointReq(nil, dataset, pt))
	if err != nil {
		return 0, nil, err
	}
	return decodeIDs(cl)
}

// PointTraced is Point with per-request tracing.
func (c *Conn) PointTraced(ctx context.Context, dataset string, pt touch.Point) (version int64, ids []touch.ID, tr *Trace, err error) {
	cl, err := c.roundTrip(ctx, wire.OpPoint, wire.AppendPointReqFlags(nil, dataset, pt, wire.QueryFlagTrace))
	if err != nil {
		return 0, nil, nil, err
	}
	version, ids, err = decodeIDs(cl)
	return version, ids, callTrace(cl), err
}

// KNN returns the k nearest indexed objects to the point.
func (c *Conn) KNN(ctx context.Context, dataset string, pt touch.Point, k int) (version int64, nbrs []touch.Neighbor, err error) {
	cl, err := c.roundTrip(ctx, wire.OpKNN, wire.AppendKNNReq(nil, dataset, pt, k))
	if err != nil {
		return 0, nil, err
	}
	return decodeNeighbors(cl)
}

// KNNTraced is KNN with per-request tracing.
func (c *Conn) KNNTraced(ctx context.Context, dataset string, pt touch.Point, k int) (version int64, nbrs []touch.Neighbor, tr *Trace, err error) {
	cl, err := c.roundTrip(ctx, wire.OpKNN, wire.AppendKNNReqFlags(nil, dataset, pt, k, wire.QueryFlagTrace))
	if err != nil {
		return 0, nil, nil, err
	}
	version, nbrs, err = decodeNeighbors(cl)
	return version, nbrs, callTrace(cl), err
}

// JoinSpec selects a join's probe side and parameters. Exactly one of
// Probe (a loaded dataset's name) or Boxes (an inline probe dataset)
// must be set; Eps 0 is the plain intersection join.
type JoinSpec struct {
	Probe   string
	Boxes   []touch.Box
	Eps     float64
	Workers int
}

// JoinCount runs a count-only join.
func (c *Conn) JoinCount(ctx context.Context, dataset string, spec JoinSpec) (version, count int64, err error) {
	cl, err := c.roundTrip(ctx, wire.OpJoin, wire.AppendJoinReq(nil, dataset, spec.Eps, spec.Workers, true, spec.Probe, spec.Boxes))
	if err != nil {
		return 0, 0, err
	}
	return decodeCount(cl)
}

// JoinCountTraced is JoinCount with per-request tracing.
func (c *Conn) JoinCountTraced(ctx context.Context, dataset string, spec JoinSpec) (version, count int64, tr *Trace, err error) {
	cl, err := c.roundTrip(ctx, wire.OpJoin,
		wire.AppendJoinReqFlags(nil, dataset, spec.Eps, spec.Workers, wire.FlagCountOnly|wire.FlagTrace, spec.Probe, spec.Boxes))
	if err != nil {
		return 0, 0, nil, err
	}
	version, count, err = decodeCount(cl)
	return version, count, callTrace(cl), err
}

// UpdateSpec is one incremental-update batch against a loaded dataset.
// Deletes apply before inserts, so a batch can replace objects without
// tombstoning its own inserts; unknown or already-deleted IDs are
// skipped silently.
type UpdateSpec struct {
	Insert []touch.Box
	Delete []touch.ID
}

// UpdateResult describes an applied update batch.
type UpdateResult struct {
	// Version is the base version the update was applied against.
	Version int64
	// InsertedIDs are the server-assigned IDs of the inserted objects,
	// consecutive and ascending; empty when the batch inserted nothing.
	InsertedIDs []touch.ID
	// Deleted counts live objects actually tombstoned.
	Deleted int
	// DeltaInserts and DeltaTombstones report the dataset's pending
	// (not yet compacted) update counts after this batch.
	DeltaInserts    int
	DeltaTombstones int
}

// Update applies one batch of incremental inserts and deletes — the
// wire twin of PATCH /v1/datasets/{name}. The update is visible to
// every later query, on any connection, before Update returns.
func (c *Conn) Update(ctx context.Context, dataset string, spec UpdateSpec) (UpdateResult, error) {
	cl, err := c.roundTrip(ctx, wire.OpUpdate, wire.AppendUpdateReq(nil, dataset, spec.Delete, spec.Insert))
	if err != nil {
		return UpdateResult{}, err
	}
	return decodeUpdate(cl)
}

// DatasetInfo is one row of a wire catalog listing — the wire twin of
// GET /v1/datasets, carrying the fields a routing tier needs to merge
// listings across replicas.
type DatasetInfo struct {
	Name            string
	Version         int64
	Status          string // "ready", "building" or "rebuilding"
	Objects         int64
	StaticBytes     int64
	DeltaInserts    int
	DeltaTombstones int
	Persisted       bool
}

// Datasets lists the server's catalog, sorted by name.
func (c *Conn) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	cl, err := c.roundTrip(ctx, wire.OpCatalog, nil)
	if err != nil {
		return nil, err
	}
	if err := respError(cl); err != nil {
		return nil, err
	}
	if cl.op != wire.OpCatalogResp {
		return nil, fmt.Errorf("client: unexpected response opcode %#02x", cl.op)
	}
	entries, err := wire.DecodeCatalogResp(cl.payload)
	if err != nil {
		return nil, err
	}
	infos := make([]DatasetInfo, len(entries))
	for i, e := range entries {
		infos[i] = DatasetInfo{
			Name:            e.Name,
			Version:         e.Version,
			Status:          e.Status,
			Objects:         e.Objects,
			StaticBytes:     e.StaticBytes,
			DeltaInserts:    e.DeltaInserts,
			DeltaTombstones: e.DeltaTombstones,
			Persisted:       e.Persisted,
		}
	}
	return infos, nil
}

// Join runs a join and materializes its pairs, sorted canonically.
// Pairs stream from the server in batches, so — like the HTTP NDJSON
// mode, and unlike buffered HTTP joins — there is no server-side
// MaxJoinPairs cap; the cap here is this client's memory.
func (c *Conn) Join(ctx context.Context, dataset string, spec JoinSpec) (version int64, pairs []touch.Pair, count int64, err error) {
	cl, err := c.roundTrip(ctx, wire.OpJoin, wire.AppendJoinReq(nil, dataset, spec.Eps, spec.Workers, false, spec.Probe, spec.Boxes))
	if err != nil {
		return 0, nil, 0, err
	}
	return decodeJoin(cl)
}

// JoinTraced is Join with per-request tracing.
func (c *Conn) JoinTraced(ctx context.Context, dataset string, spec JoinSpec) (version int64, pairs []touch.Pair, count int64, tr *Trace, err error) {
	cl, err := c.roundTrip(ctx, wire.OpJoin,
		wire.AppendJoinReqFlags(nil, dataset, spec.Eps, spec.Workers, wire.FlagTrace, spec.Probe, spec.Boxes))
	if err != nil {
		return 0, nil, 0, nil, err
	}
	version, pairs, count, err = decodeJoin(cl)
	return version, pairs, count, callTrace(cl), err
}
