package client_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"touch/client"
	"touch/internal/wire"
)

// silentAfterFirst is the regression rig for the Pool.Conn lock bug: its
// first accepted connection completes the wire handshake and then idles
// (a healthy pooled conn), while every later connection is accepted but
// never answered — the shape of a server that stops responding mid-dial.
type silentAfterFirst struct {
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
	n     int
}

func newSilentAfterFirst(t *testing.T) *silentAfterFirst {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &silentAfterFirst{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			first := s.n == 0
			s.n++
			s.mu.Unlock()
			if first {
				go func() {
					// Complete the handshake, then idle: the client
					// side stays healthy (Err() == nil) indefinitely.
					buf := make([]byte, 64)
					io := c
					if _, err := io.Read(buf); err == nil {
						wire.WriteHello(io, "")
					}
				}()
			}
			// Later conns: accepted, never replied to. Dial blocks in
			// ReadHello until its context deadline fires.
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.hangUpSilent()
	})
	return s
}

// hangUpSilent closes every never-answered connection, failing any dial
// still parked in its handshake.
func (s *silentAfterFirst) hangUpSilent() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range s.conns {
		if i > 0 {
			c.Close()
		}
	}
}

// TestPoolConnDialOutsideLock pins the fix for Pool.Conn dialing while
// holding p.mu: a dial that hangs on the handshake must neither block
// concurrent Conn calls nor surface as an error while a healthy pooled
// connection exists.
func TestPoolConnDialOutsideLock(t *testing.T) {
	s := newSilentAfterFirst(t)
	p := client.NewPool(s.ln.Addr().String(), 2)
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c1, err := p.Conn(ctx)
	if err != nil {
		t.Fatalf("first Conn: %v", err)
	}

	// Park a second Conn call in the hanging dial. Before the fix this
	// held p.mu for its whole 3-second handshake wait.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		pctx, pcancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer pcancel()
		c, err := p.Conn(pctx)
		// Whatever happens to the dial, the call must resolve to the
		// healthy conn, not an error: dial failure falls back to c1.
		if err != nil || c != c1 {
			t.Errorf("parked Conn: got %p err %v, want fallback %p", c, err, c1)
		}
	}()

	// Give the parked call time to enter the dial, then demand service.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	qctx, qcancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer qcancel()
	c2, err := p.Conn(qctx)
	if err != nil {
		t.Fatalf("Conn during hanging dial: %v", err)
	}
	if c2 != c1 {
		t.Fatalf("Conn during hanging dial returned %p, want pooled %p", c2, c1)
	}
	// The pre-fix behavior waits out the parked dial's 3s context; the
	// fixed path only waits its own 250ms dial attempt at worst.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Conn blocked %v behind a hanging dial", elapsed)
	}

	// Hang up on the parked dial: it must fail over to c1 immediately
	// rather than surfacing the dial error.
	s.hangUpSilent()
	<-parked
}

// refusingAddr returns an address that actively refuses connections: a
// listener is bound to reserve the port, then closed.
func refusingAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestPoolDialBackoff pins the dial-storm fix: a dead backend must cost
// the pool a bounded number of connect attempts, not one per request.
// 50 rapid Conn calls against a refusing listener may dial a handful of
// times (concurrent callers can race past the first failure) but far
// fewer than once per call, and each call still fails fast with the
// cached dial error instead of blocking in the dialer.
func TestPoolDialBackoff(t *testing.T) {
	p := client.NewPool(refusingAddr(t), 2)
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	for i := 0; i < 50; i++ {
		if _, err := p.Conn(ctx); err == nil {
			t.Fatal("Conn against a refusing listener succeeded")
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("50 failing Conn calls took %v; backoff should make them near-instant", elapsed)
	}
	if n := p.DialAttempts(); n > 10 {
		t.Fatalf("50 Conn calls caused %d dial attempts, want a handful under backoff", n)
	}
	if p.Healthy() {
		t.Fatal("pool with zero live connections reports Healthy")
	}
}

// TestPoolHealthyAndCloseIdempotent: Healthy tracks live connections
// through the pool's lifecycle, and Close can be called repeatedly.
func TestPoolHealthyAndCloseIdempotent(t *testing.T) {
	s := newSilentAfterFirst(t)
	p := client.NewPool(s.ln.Addr().String(), 1)
	if p.Healthy() {
		t.Fatal("undialed pool reports Healthy")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Conn(ctx); err != nil {
		t.Fatalf("Conn: %v", err)
	}
	if !p.Healthy() {
		t.Fatal("pool with a live connection reports unhealthy")
	}
	for i := 0; i < 3; i++ {
		if err := p.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if p.Healthy() {
		t.Fatal("closed pool reports Healthy")
	}
	if _, err := p.Conn(ctx); err != client.ErrClosed {
		t.Fatalf("Conn after Close: err %v, want ErrClosed", err)
	}
}
