package touch

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestSnapshotRoundtripServesIdentically(t *testing.T) {
	a := GenerateClustered(6000, 42)
	ix := BuildIndex(a, TOUCHConfig{Partitions: 128, Workers: 2})
	info := SnapshotInfo{Name: "city", Version: 4, BuiltAt: time.Unix(1712000000, 0).UTC()}

	var buf bytes.Buffer
	n, err := WriteSnapshot(&buf, info, a, ix)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("wrote %d, buffer holds %d", n, buf.Len())
	}

	got, ds, loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got != info {
		t.Fatalf("info %+v, want %+v", got, info)
	}
	if len(ds) != len(a) {
		t.Fatalf("dataset %d objects, want %d", len(ds), len(a))
	}
	if loaded.Config() != ix.Config() {
		t.Fatalf("config %+v, want %+v", loaded.Config(), ix.Config())
	}
	if loaded.Stats() != ix.Stats() {
		t.Fatalf("stats %+v, want %+v", loaded.Stats(), ix.Stats())
	}

	// Differential checks: join, range and kNN must answer exactly as
	// the index the snapshot was taken from.
	b := GenerateUniform(3000, 7)
	want := ix.Join(b, nil)
	have := loaded.Join(b, nil)
	if len(want.Pairs) != len(have.Pairs) {
		t.Fatalf("join found %d pairs, want %d", len(have.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		if want.Pairs[i] != have.Pairs[i] {
			t.Fatalf("pair %d = %v, want %v", i, have.Pairs[i], want.Pairs[i])
		}
	}
	q := NewBox(Point{100, 100, 100}, Point{400, 380, 300})
	wr, err1 := ix.RangeQuery(q)
	hr, err2 := loaded.RangeQuery(q)
	if err1 != nil || err2 != nil {
		t.Fatalf("range errors: %v / %v", err1, err2)
	}
	if len(wr) != len(hr) {
		t.Fatalf("range found %d, want %d", len(hr), len(wr))
	}
	wk, _ := ix.KNN(Point{500, 500, 500}, 25)
	hk, _ := loaded.KNN(Point{500, 500, 500}, 25)
	if len(wk) != len(hk) {
		t.Fatalf("knn found %d, want %d", len(hk), len(wk))
	}
	for i := range wk {
		if wk[i] != hk[i] {
			t.Fatalf("neighbor %d = %v, want %v", i, hk[i], wk[i])
		}
	}
}

func TestSnapshotEmptyDataset(t *testing.T) {
	ix := BuildIndex(nil, TOUCHConfig{})
	data, err := EncodeSnapshot(SnapshotInfo{Name: "empty"}, nil, ix)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	_, ds, loaded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if len(ds) != 0 {
		t.Fatalf("decoded %d objects", len(ds))
	}
	res := loaded.Join(GenerateUniform(100, 1), nil)
	if len(res.Pairs) != 0 {
		t.Fatalf("join on empty index found %d pairs", len(res.Pairs))
	}
}

func TestSnapshotRejectsMismatchedPair(t *testing.T) {
	a := GenerateUniform(500, 1)
	ix := BuildIndex(a, TOUCHConfig{})
	if _, err := EncodeSnapshot(SnapshotInfo{Name: "x"}, a[:100], ix); err == nil {
		t.Fatal("encode accepted index/dataset mismatch")
	}
	if _, err := EncodeSnapshot(SnapshotInfo{Name: "x"}, a, nil); err == nil {
		t.Fatal("encode accepted nil index")
	}
}

func TestDecodeSnapshotCorrupt(t *testing.T) {
	a := GenerateUniform(400, 3)
	ix := BuildIndex(a, TOUCHConfig{})
	data, err := EncodeSnapshot(SnapshotInfo{Name: "x", Version: 1}, a, ix)
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", data[:len(data)/3]},
		{"flipped", func() []byte {
			d := append([]byte(nil), data...)
			d[len(d)-20] ^= 0x10
			return d
		}()},
	} {
		if _, _, _, err := DecodeSnapshot(mut.data); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrSnapshotCorrupt", mut.name, err)
		}
	}
}

// BenchmarkSnapshotCodec tracks the restart-path costs: encode (the
// build-path overhead of a durable catalog) and decode (what a restart
// pays per dataset instead of a rebuild — compare BenchmarkSnapshotCodec
// /decode to an 8K-object BuildIndex to see the speedup).
func BenchmarkSnapshotCodec(b *testing.B) {
	ds := GenerateUniform(8192, 42)
	ix := BuildIndex(ds, TOUCHConfig{})
	info := SnapshotInfo{Name: "bench", Version: 1, BuiltAt: time.Unix(0, 0)}
	data, err := EncodeSnapshot(info, ds, ix)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := EncodeSnapshot(info, ds, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, _, _, err := DecodeSnapshot(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
