package touch

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"touch/internal/datagen"
	"touch/internal/geom"
)

// Dataset generators: thin re-exports of internal/datagen with the
// paper's default parameters (boxes with sides uniform in (0,1] in a
// 1000³ universe; §6.2).

// GenerateUniform returns n uniformly distributed boxes.
func GenerateUniform(n int, seed int64) Dataset { return datagen.UniformSet(n, seed) }

// GenerateGaussian returns n Gaussian-distributed boxes (μ=500, σ=250).
func GenerateGaussian(n int, seed int64) Dataset { return datagen.GaussianSet(n, seed) }

// GenerateClustered returns n boxes scattered around 100 random cluster
// centers (σ=220).
func GenerateClustered(n int, seed int64) Dataset { return datagen.ClusteredSet(n, seed) }

// NeuroConfig configures the synthetic neuroscience workload; see
// DefaultNeuroConfig for the paper's dataset sizes.
type NeuroConfig = datagen.NeuroConfig

// DefaultNeuroConfig returns the paper's neuroscience dataset shape:
// 644K axon and 1.285M dendrite cylinders in a 285-unit cubic volume.
func DefaultNeuroConfig(seed int64) NeuroConfig { return datagen.DefaultNeuroConfig(seed) }

// GenerateNeuro grows synthetic neuron morphologies and returns the axon
// (A) and dendrite (B) cylinder sets of the touch-detection workload.
func GenerateNeuro(cfg NeuroConfig) (axons, dendrites CylinderSet) {
	return datagen.GenerateNeuro(cfg)
}

// RefineCylinders keeps only the candidate pairs whose exact cylinder
// geometry is within eps — the refinement phase following the MBR
// filtering phase.
func RefineCylinders(a, b CylinderSet, pairs []Pair, eps float64) []Pair {
	return geom.Refine(a, b, pairs, eps)
}

// DatasetFromBoxes constructs a Dataset from explicit boxes, assigning
// sequential IDs starting at 0 — the loader for decoded network payloads
// (JSON box arrays). Unlike ReadDataset it does not normalize corner
// order: a box with Min > Max in some dimension, or any NaN or ±Inf
// coordinate, is rejected with an error wrapping ErrInvalidBox, so a
// malformed payload cannot poison an index (non-finite coordinates break
// STR packing and grid sizing silently rather than loudly).
func DatasetFromBoxes(boxes []Box) (Dataset, error) {
	ds := make(Dataset, 0, len(boxes))
	for i, b := range boxes {
		if err := checkDataBox(b); err != nil {
			return nil, fmt.Errorf("touch: box %d: %w", i, err)
		}
		ds = append(ds, Object{ID: geom.ID(len(ds)), Box: b})
	}
	return ds, nil
}

// checkDataBox validates a box destined for a dataset: every coordinate
// finite and Min <= Max per dimension. (Query boxes are laxer — an
// infinite RangeQuery box is meaningful — so this check is only applied
// by the dataset loaders.)
func checkDataBox(b Box) error {
	for d := 0; d < geom.Dims; d++ {
		lo, hi := b.Min[d], b.Max[d]
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || lo > hi {
			return fmt.Errorf("%w %v", ErrInvalidBox, b)
		}
	}
	return nil
}

// ReadDataset parses a dataset from a text stream with one object per
// line: six whitespace- or comma-separated numbers
//
//	minX minY minZ maxX maxY maxZ
//
// Empty lines and lines starting with '#' are skipped. Objects receive
// sequential IDs starting at 0. Corner order is normalized per dimension
// (NewBox semantics); NaN and ±Inf coordinates are rejected with an
// error wrapping ErrInvalidBox.
func ReadDataset(r io.Reader) (Dataset, error) {
	var ds Dataset
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		if len(fields) != 2*geom.Dims {
			return nil, fmt.Errorf("touch: line %d: want %d numbers, got %d", lineNo, 2*geom.Dims, len(fields))
		}
		var v [2 * geom.Dims]float64
		for i, f := range fields {
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("touch: line %d: %v", lineNo, err)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("touch: line %d: %w: non-finite coordinate %q", lineNo, ErrInvalidBox, f)
			}
			v[i] = x
		}
		box := geom.NewBox(Point{v[0], v[1], v[2]}, Point{v[3], v[4], v[5]})
		ds = append(ds, Object{ID: geom.ID(len(ds)), Box: box})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("touch: reading dataset: %w", err)
	}
	return ds, nil
}

// WriteDataset writes a dataset in the format ReadDataset parses.
func WriteDataset(w io.Writer, ds Dataset) error {
	bw := bufio.NewWriter(w)
	for i := range ds {
		b := &ds[i].Box
		_, err := fmt.Fprintf(bw, "%g %g %g %g %g %g\n",
			b.Min[0], b.Min[1], b.Min[2], b.Max[0], b.Max[1], b.Max[2])
		if err != nil {
			return fmt.Errorf("touch: writing dataset: %w", err)
		}
	}
	return bw.Flush()
}
