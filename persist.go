package touch

import (
	"errors"
	"fmt"
	"io"
	"time"

	"touch/internal/core"
	"touch/internal/snapshot"
)

// ErrSnapshotCorrupt is wrapped into every snapshot decode rejection —
// truncated input, checksum mismatch, or a tree failing structural
// validation; test with errors.Is. Decoding arbitrary corrupt bytes
// returns an error wrapping this, never a panic and never a silently
// different index.
var ErrSnapshotCorrupt = snapshot.ErrCorrupt

// SnapshotInfo identifies a snapshot: the dataset name and version it
// carries and when its index was built. Serving layers persist one
// snapshot per catalog entry; library users may use any naming scheme
// (Version and BuiltAt can be zero).
type SnapshotInfo struct {
	Name    string
	Version int64
	BuiltAt time.Time
}

// EncodeSnapshot serializes a dataset and the Index built over it into
// the durable snapshot format: a versioned, length-prefixed binary
// layout with per-section CRC32C checksums, decodable by DecodeSnapshot
// into an Index that answers every query identically. The dataset must
// be the one the index was built from (the object counts are
// cross-checked; a mismatched pairing fails to encode).
func EncodeSnapshot(info SnapshotInfo, a Dataset, ix *Index) ([]byte, error) {
	if ix == nil {
		return nil, errors.New("touch: nil index")
	}
	rec := &snapshot.Record{
		Name:    info.Name,
		Version: info.Version,
		BuiltAt: info.BuiltAt,
		Objects: a,
		Tree:    ix.tree.Freeze(),
	}
	return rec.Marshal()
}

// DecodeSnapshot decodes and fully validates a snapshot produced by
// EncodeSnapshot, returning its identity, the original dataset and a
// ready-to-serve Index — no rebuild. Every checksum and every
// structural invariant of the tree is re-verified (MBRs and extent sums
// are recomputed from the arena and compared bit-exactly), so corrupt
// bytes — torn writes, bit flips, hostile edits — are rejected with an
// error wrapping ErrSnapshotCorrupt.
func DecodeSnapshot(data []byte) (SnapshotInfo, Dataset, *Index, error) {
	rec, err := snapshot.Unmarshal(data)
	if err != nil {
		return SnapshotInfo{}, nil, nil, err
	}
	tree, err := rec.Thaw()
	if err != nil {
		return SnapshotInfo{}, nil, nil, err
	}
	info := SnapshotInfo{Name: rec.Name, Version: rec.Version, BuiltAt: rec.BuiltAt}
	return info, rec.Objects, indexFromTree(tree, len(rec.Objects)), nil
}

// WriteSnapshot is EncodeSnapshot to an io.Writer, returning the byte
// count written. Writing to a file does not by itself make the snapshot
// crash-safe — the serving layer's store adds the temp-file → fsync →
// rename → directory-fsync protocol on top.
func WriteSnapshot(w io.Writer, info SnapshotInfo, a Dataset, ix *Index) (int64, error) {
	data, err := EncodeSnapshot(info, a, ix)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	if err == nil && n < len(data) {
		err = io.ErrShortWrite
	}
	return int64(n), err
}

// ReadSnapshot is DecodeSnapshot from an io.Reader.
func ReadSnapshot(r io.Reader) (SnapshotInfo, Dataset, *Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return SnapshotInfo{}, nil, nil, fmt.Errorf("touch: read snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}

// indexFromTree wraps an already-validated tree in the public Index,
// wiring the probe pool exactly as BuildIndex does.
func indexFromTree(t *core.Tree, lenA int) *Index {
	ix := &Index{tree: t, lenA: lenA}
	ix.probes.New = func() any { return ix.tree.NewProbe() }
	return ix
}

// Config returns the configuration the index was built with, defaults
// filled in — the value a snapshot round-trips, so a rebuild with this
// config reproduces the identical tree shape.
func (ix *Index) Config() TOUCHConfig { return ix.tree.Config() }
