package touch

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"touch/internal/stats"
)

// cancelFixture builds a workload dense enough that every algorithm has
// plenty of comparisons left after the first result: |A|·|B| identical
// boxes all pairwise overlap.
func cancelFixture(n int) (a, b Dataset) {
	box := NewBox(Point{0, 0, 0}, Point{10, 10, 10})
	a = make(Dataset, n)
	b = make(Dataset, n)
	for i := 0; i < n; i++ {
		a[i] = Object{ID: ID(i), Box: box}
		b[i] = Object{ID: ID(i), Box: box}
	}
	return a, b
}

// TestCancelMidJoinBounded: cancelling the context from inside the sink
// — i.e. mid-join, deterministically — must return ErrJoinCanceled, and
// the engine must stop within a bounded number of further emissions
// (the checkpoint interval plus one indivisible work unit), not run the
// join to completion.
func TestCancelMidJoinBounded(t *testing.T) {
	a, b := cancelFixture(400) // 160000 pairs if run to completion
	algs := append(Algorithms(), AlgSeeded)
	for _, alg := range algs {
		t.Run(string(alg), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var after atomic.Int64
			canceledAt := int64(100)
			var n int64
			sink := countingSink(func() {
				if n++; n == canceledAt {
					cancel()
				} else if n > canceledAt {
					after.Add(1)
				}
			})
			_, err := SpatialJoinCtx(ctx, alg, a, b, &Options{Sink: sink})
			if !errors.Is(err, ErrJoinCanceled) {
				t.Fatalf("cancelled %s join returned %v, want ErrJoinCanceled", alg, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: error %v must wrap context.Canceled", alg, err)
			}
			// The abort is cooperative: every worker may run up to one
			// checkpoint interval past the cancel, plus one indivisible
			// unit (a grid-cell run, a sweep prefix). 2× the interval is
			// a safe, meaningful bound — full completion would be 160000.
			if got := after.Load(); got > 2*stats.CheckEvery {
				t.Fatalf("%s emitted %d pairs after cancellation (bound %d)", alg, got, 2*stats.CheckEvery)
			}
		})
	}
}

// countingSink adapts a func to Sink for the cancellation tests.
type countingSink func()

func (f countingSink) Emit(a, b ID) { f() }

// TestCancelPreCanceledContext: a context that is already dead fails
// fast on every entry point, before any work.
func TestCancelPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := GenerateUniform(50, 1)
	b := GenerateUniform(50, 2)
	if _, err := SpatialJoinCtx(ctx, AlgTOUCH, a, b, nil); !errors.Is(err, ErrJoinCanceled) {
		t.Fatalf("SpatialJoinCtx: %v", err)
	}
	if _, err := DistanceJoinCtx(ctx, AlgNL, a, b, 1, nil); !errors.Is(err, ErrJoinCanceled) {
		t.Fatalf("DistanceJoinCtx: %v", err)
	}
	ix := BuildIndex(a, TOUCHConfig{})
	if _, err := ix.JoinCtx(ctx, b, nil); !errors.Is(err, ErrJoinCanceled) {
		t.Fatalf("Index.JoinCtx: %v", err)
	}
	if _, err := ix.DistanceJoinCtx(ctx, b, 1, nil); !errors.Is(err, ErrJoinCanceled) {
		t.Fatalf("Index.DistanceJoinCtx: %v", err)
	}
	sawErr := false
	for _, err := range ix.JoinSeq(ctx, b, nil) {
		if !errors.Is(err, ErrJoinCanceled) {
			t.Fatalf("JoinSeq on dead context yielded %v", err)
		}
		sawErr = true
	}
	if !sawErr {
		t.Fatal("JoinSeq on dead context yielded nothing")
	}
}

// TestIndexJoinCtxCancelKeepsProbeClean: a cancelled JoinCtx (aborted
// mid-assignment or mid-join) must leave nothing behind in the probe it
// returns to the pool — the next, uncancelled join on the same index
// answers exactly like a fresh one.
func TestIndexJoinCtxCancelKeepsProbeClean(t *testing.T) {
	a := GenerateUniform(800, 31).Expand(100)
	b := GenerateUniform(2000, 32)
	ix := BuildIndex(a, TOUCHConfig{Partitions: 64})
	want := ix.Join(b, nil)
	want.SortPairs()
	// The cancellation below lands within the first ~134 pairs; the join
	// must have far more than a checkpoint interval of work left there,
	// or a fast completion could legitimately beat the abort.
	if want.Stats.Comparisons < 8*stats.CheckEvery {
		t.Fatalf("premise: workload too sparse (%d comparisons)", want.Stats.Comparisons)
	}

	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		n, stopAt := 0, i*7+1
		sink := countingSink(func() {
			if n++; n == stopAt {
				cancel()
			}
		})
		if _, err := ix.JoinCtx(ctx, b, &Options{Sink: sink}); !errors.Is(err, ErrJoinCanceled) {
			cancel()
			t.Fatalf("round %d: %v", i, err)
		}
		cancel()

		got := ix.Join(b, nil)
		got.SortPairs()
		if !slices.Equal(got.Pairs, want.Pairs) {
			t.Fatalf("round %d: join after cancelled join diverged (%d vs %d pairs)",
				i, len(got.Pairs), len(want.Pairs))
		}
	}
}

// TestLimitExact: Options.Limit delivers exactly N pairs — to the
// result, to a sink, and under parallelism — with Stats.Results pinned
// to the delivered count, and leaves shorter results untouched.
func TestLimitExact(t *testing.T) {
	a := GenerateUniform(500, 41).Expand(60)
	b := GenerateUniform(900, 42)
	full, err := SpatialJoin(AlgTOUCH, a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := full.Stats.Results
	if total < 50 {
		t.Fatalf("premise: workload too sparse (%d pairs)", total)
	}

	for _, workers := range []int{1, 4} {
		for _, limit := range []int64{1, 7, total / 2, total, total + 1000} {
			res, err := SpatialJoinCtx(context.Background(), AlgTOUCH, a, b,
				&Options{Limit: limit, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			want := min(limit, total)
			if int64(len(res.Pairs)) != want || res.Stats.Results != want {
				t.Fatalf("workers=%d limit=%d: %d pairs, Results=%d, want %d",
					workers, limit, len(res.Pairs), res.Stats.Results, want)
			}
		}
	}

	// Sink delivery is capped identically.
	var delivered int64
	sink := countingSink(func() { delivered++ })
	if _, err := SpatialJoin(AlgTOUCH, a, b, &Options{Limit: 13, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	if delivered != 13 {
		t.Fatalf("sink got %d pairs, want 13", delivered)
	}

	// NoPairs + Limit: the count stops at the limit too.
	res, err := SpatialJoin(AlgTOUCH, a, b, &Options{Limit: 5, NoPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != 5 {
		t.Fatalf("NoPairs limited count = %d, want 5", res.Stats.Results)
	}
}

// TestLimitRespectsSwap: with the join-order heuristic swapping the
// datasets, limited pairs still arrive in (A, B) orientation.
func TestLimitRespectsSwap(t *testing.T) {
	a := GenerateUniform(900, 51).Expand(60) // larger: heuristic swaps
	b := GenerateUniform(300, 52)
	res, err := SpatialJoin(AlgTOUCH, a, b, &Options{Limit: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 25 {
		t.Fatalf("limited swapped join delivered %d pairs", len(res.Pairs))
	}
	full, err := SpatialJoin(AlgTOUCH, a, b, &Options{KeepOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[Pair]bool, len(full.Pairs))
	for _, p := range full.Pairs {
		valid[p] = true
	}
	for _, p := range res.Pairs {
		if !valid[p] {
			t.Fatalf("limited join emitted pair %v not in the full (A,B)-oriented result", p)
		}
	}
}

// pairSet collects an iterator's pairs into a map, failing on error.
func pairSet(t *testing.T, seq func(func(Pair, error) bool)) map[Pair]bool {
	t.Helper()
	m := make(map[Pair]bool)
	for p, err := range seq {
		if err != nil {
			t.Fatalf("streaming join error: %v", err)
		}
		if m[p] {
			t.Fatalf("streaming join yielded duplicate pair %v", p)
		}
		m[p] = true
	}
	return m
}

// TestStreamingMaterializedDifferential: the streaming, materialized and
// effectively-unlimited (Limit far past the result size) paths must emit
// identical pair sets, one-shot and on a prebuilt index, sequential and
// parallel.
func TestStreamingMaterializedDifferential(t *testing.T) {
	a := GenerateUniform(600, 61).Expand(8)
	b := GenerateUniform(1100, 62)

	ref, err := SpatialJoin(AlgTOUCH, a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[Pair]bool, len(ref.Pairs))
	for _, p := range ref.Pairs {
		want[p] = true
	}

	check := func(name string, got map[Pair]bool) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
		}
		for p := range got {
			if !want[p] {
				t.Fatalf("%s: spurious pair %v", name, p)
			}
		}
	}

	ix := BuildIndex(a, TOUCHConfig{})
	ctx := context.Background()
	check("one-shot stream", pairSet(t, JoinSeq(ctx, AlgTOUCH, a, b, nil)))
	check("one-shot stream w4", pairSet(t, JoinSeq(ctx, AlgTOUCH, a, b, &Options{Workers: 4})))
	check("one-shot stream nl", pairSet(t, JoinSeq(ctx, AlgNL, a, b, nil)))
	check("index stream", pairSet(t, ix.JoinSeq(ctx, b, nil)))
	check("index stream w4", pairSet(t, ix.JoinSeq(ctx, b, &Options{Workers: 4})))
	check("limit beyond total", pairSet(t, ix.JoinSeq(ctx, b, &Options{Limit: int64(len(want)) + 10_000})))

	mat, err := ix.JoinCtx(ctx, b, &Options{Limit: int64(len(want)) + 10_000})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[Pair]bool, len(mat.Pairs))
	for _, p := range mat.Pairs {
		got[p] = true
	}
	check("materialized with headroom limit", got)
}

// TestJoinSeqBreakAndLimit: breaking out of the iterator stops the join
// cleanly, and Options.Limit truncates the sequence exactly.
func TestJoinSeqBreakAndLimit(t *testing.T) {
	a, b := cancelFixture(200) // 40000 pairs
	ix := BuildIndex(a, TOUCHConfig{})

	n := 0
	for p, err := range ix.JoinSeq(context.Background(), b, nil) {
		if err != nil {
			t.Fatal(err)
		}
		_ = p
		if n++; n == 37 {
			break
		}
	}
	if n != 37 {
		t.Fatalf("broke after %d pairs", n)
	}

	n = 0
	for _, err := range ix.JoinSeq(context.Background(), b, &Options{Limit: 123}) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 123 {
		t.Fatalf("limited sequence yielded %d pairs, want 123", n)
	}
}

// TestDistanceJoinSeq: the streaming distance join shares the buffered
// path's validation (negative eps yields the error as the only
// element) and its probe-side expansion (same pair set).
func TestDistanceJoinSeq(t *testing.T) {
	a := GenerateUniform(300, 81)
	b := GenerateUniform(500, 82)
	ix := BuildIndex(a, TOUCHConfig{})

	var got error
	for _, err := range ix.DistanceJoinSeq(context.Background(), b, -1, nil) {
		got = err
	}
	if !errors.Is(got, ErrNegativeDistance) {
		t.Fatalf("negative eps yielded %v, want ErrNegativeDistance", got)
	}

	ref, err := ix.DistanceJoin(b, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[Pair]bool, len(ref.Pairs))
	for _, p := range ref.Pairs {
		want[p] = true
	}
	got2 := pairSet(t, ix.DistanceJoinSeq(context.Background(), b, 40, nil))
	if len(got2) != len(want) {
		t.Fatalf("streamed distance join: %d pairs, want %d", len(got2), len(want))
	}
	for p := range got2 {
		if !want[p] {
			t.Fatalf("streamed distance join: spurious pair %v", p)
		}
	}
}

// TestJoinSeqUnknownAlgorithm: the one-shot iterator surfaces a bad
// algorithm name as its only element.
func TestJoinSeqUnknownAlgorithm(t *testing.T) {
	var got error
	for _, err := range JoinSeq(context.Background(), Algorithm("bogus"), nil, nil, nil) {
		got = err
	}
	if !errors.Is(got, ErrUnknownAlgorithm) {
		t.Fatalf("got %v, want ErrUnknownAlgorithm", got)
	}
}

// TestJoinSeqConcurrentBreakRace is the -race centerpiece of the
// streaming API: 8 consumers iterate JoinSeq on one shared Index and
// break at random points (some cancel instead), concurrently, in
// several rounds. Probes must recycle cleanly through the pool — the
// final full joins must stay bit-identical to the sequential oracle.
func TestJoinSeqConcurrentBreakRace(t *testing.T) {
	a := GenerateUniform(700, 71).Expand(8)
	b := GenerateUniform(1500, 72)
	ix := BuildIndex(a, TOUCHConfig{Partitions: 64})

	oracle := ix.Join(b, nil)
	oracle.SortPairs()

	const consumers = 8
	const rounds = 6
	var wg sync.WaitGroup
	for g := 0; g < consumers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 977))
			for r := 0; r < rounds; r++ {
				workers := 1 + rng.Intn(3)
				stopAt := 1 + rng.Intn(2*len(oracle.Pairs))
				ctx, cancel := context.WithCancel(context.Background())
				n := 0
				for _, err := range ix.JoinSeq(ctx, b, &Options{Workers: workers}) {
					if err != nil {
						if !errors.Is(err, ErrJoinCanceled) {
							t.Errorf("consumer %d round %d: %v", g, r, err)
						}
						break
					}
					if n++; n == stopAt {
						if rng.Intn(2) == 0 {
							break // iterator break path
						}
						cancel() // context cancellation path
					}
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()

	// After all that churn, full joins drawing recycled probes answer
	// exactly like the pristine oracle.
	for i := 0; i < 4; i++ {
		got := ix.Join(b, nil)
		got.SortPairs()
		if !slices.Equal(got.Pairs, oracle.Pairs) {
			t.Fatalf("post-race join %d diverged from oracle (%d vs %d pairs)",
				i, len(got.Pairs), len(oracle.Pairs))
		}
	}
}
