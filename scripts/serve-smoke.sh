#!/bin/sh
# serve-smoke: boot touchserved on a random port, exercise healthz, one
# query per shape (range/point/knn), a join, the catalog listing, the
# metrics endpoint and one error mapping over real HTTP; then replay the
# same queries over the binary wire listener as one pipelined touchwire
# batch and require byte-identical answers, before asserting a clean
# graceful shutdown of both listeners on SIGTERM. A second phase checks
# crash recovery: two datasets in a durable catalog, kill -9, restart,
# and the catalog must come back identical — same versions, same
# answers, no rebuilds — with corrupt snapshot files quarantined, not
# fatal. A third phase boots two replicas behind a touchrouter: routed
# answers must match a direct backend byte-for-byte, and kill -9 on one
# replica must leave reads working while the router's metrics record
# the ejection. CI runs this via `make serve-smoke`.
set -eu

WORK=$(mktemp -d)
BIN="$WORK/touchserved"
LOG="$WORK/touchserved.log"
DATA="$WORK/smoke.txt"

# cleanup runs on every exit path, including mid-phase failures and
# signals: kill the server if one is still up, reap it so no orphan
# outlives the script, then drop the temp dir.
cleanup() {
    for P in "${PID:-}" "${BPID1:-}" "${BPID2:-}" "${RPID:-}"; do
        [ -n "$P" ] || continue
        kill "$P" 2>/dev/null || true
        wait "$P" 2>/dev/null || true
    done
    PID= BPID1= BPID2= RPID=
    rm -rf "$WORK"
}
trap cleanup EXIT
# A signal must clean up and then report the interruption, not fall
# through to the success path: re-raise INT for the caller, exit 143
# (128+SIGTERM) on TERM.
trap 'cleanup; trap - INT EXIT; kill -INT $$' INT
trap 'cleanup; trap - EXIT; exit 143' TERM

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

go build -o "$BIN" ./cmd/touchserved
WIREBIN="$WORK/touchwire"
go build -o "$WIREBIN" ./cmd/touchwire
RBIN="$WORK/touchrouter"
go build -o "$RBIN" ./cmd/touchrouter

# Three known boxes so every query has a predictable answer.
printf '0 0 0 10 10 10\n5 5 5 15 15 15\n20 20 20 30 30 30\n' > "$DATA"

"$BIN" -addr 127.0.0.1:0 -bin-addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 \
    -slow-query-ms 1 -load smoke="$DATA" > "$LOG" 2>&1 &
PID=$!

# wait_addr: block until the startup line carries the randomly chosen
# port, setting BASE. Reads the log named in $LOG. The slog text handler
# quotes messages containing spaces, so the capture stops at the first
# space or closing quote.
wait_addr() {
    ADDR=
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's/.*touchserved listening on \([^ "]*\).*/\1/p' "$LOG" | head -n 1)
        [ -n "$ADDR" ] && break
        kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
        i=$((i + 1))
        sleep 0.1
    done
    [ -n "$ADDR" ] || fail "server never printed its listen address"
    BASE="http://$ADDR"
}

wait_addr
echo "serve-smoke: server on $BASE"

post() { curl -sf -X POST "$BASE$1" -H 'Content-Type: application/json' -d "$2"; }

curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz"
curl -sf "$BASE/v1/datasets" | grep -q '"name":"smoke"' || fail "catalog listing"

post /v1/datasets/smoke/query '{"type":"range","box":[0,0,0,50,50,50]}' \
    | grep -q '"count":3' || fail "range query"
post /v1/datasets/smoke/query '{"type":"point","point":[6,6,6]}' \
    | grep -q '"count":2' || fail "point query"
post /v1/datasets/smoke/query '{"type":"knn","point":[1,1,1],"k":2}' \
    | grep -q '"count":2' || fail "knn query"
post /v1/datasets/smoke/join '{"boxes":[[4,4,4,6,6,6]]}' \
    | grep -q '"count":2' || fail "join"

# NDJSON streaming join: pair lines then a {"count":N} trailer marking a
# complete (non-truncated) stream.
NDJSON=$(curl -sf -X POST "$BASE/v1/datasets/smoke/join" \
    -H 'Content-Type: application/json' -H 'Accept: application/x-ndjson' \
    -d '{"boxes":[[4,4,4,6,6,6]]}')
echo "$NDJSON" | grep -q '^{"count":2}$' || fail "ndjson join trailer"
[ "$(echo "$NDJSON" | grep -c '^\[')" = "2" ] || fail "ndjson join pair lines"
curl -sf "$BASE/metrics" | grep -q 'touchserved_requests_total{class="query"} 3' \
    || fail "metrics"

# --- observability ------------------------------------------------------
# Per-request tracing: X-Touch-Trace must grow the response a trace
# object carrying the server-assigned request ID, and every admitted
# response must name its ID in the X-Touch-Request-Id header.
TRACED=$(curl -sf -X POST "$BASE/v1/datasets/smoke/query" \
    -H 'Content-Type: application/json' -H 'X-Touch-Trace: 1' \
    -d '{"type":"range","box":[0,0,0,50,50,50]}')
echo "$TRACED" | grep -q '"trace":{' || fail "traced query carries no trace: $TRACED"
echo "$TRACED" | grep -q '"request_id"' || fail "trace carries no request id: $TRACED"
echo "$TRACED" | grep -q '"comparisons"' || fail "trace carries no engine counters: $TRACED"
if curl -sf -D - -o /dev/null "$BASE/healthz" | grep -qi '^x-touch-request-id:'; then
    fail "unadmitted healthz grew a request id header"
fi
curl -sf -D - -o /dev/null -X POST "$BASE/v1/datasets/smoke/query" \
    -H 'Content-Type: application/json' -d '{"type":"point","point":[6,6,6]}' \
    | grep -qi '^x-touch-request-id:' || fail "response without X-Touch-Request-Id header"

# Build identity: /version over HTTP, and -version on the binary.
curl -sf "$BASE/version" | grep -q '"go_version"' || fail "/version shape"
"$BIN" -version | grep -q 'go1' || fail "-version output"

# Slow-query log: armed via -slow-query-ms, served as JSON on the main
# listener and as text on the debug listener; SIGUSR1 dumps it to stderr.
curl -sf "$BASE/debug/slowlog" | grep -q '"threshold_ms"' || fail "/debug/slowlog shape"
DADDR=$(sed -n 's/.*touchserved debug listening on \([^ "]*\).*/\1/p' "$LOG" | head -n 1)
[ -n "$DADDR" ] || fail "server never printed its debug listen address"
curl -sf "http://$DADDR/debug/slowlog" | grep -q 'slowlog:' || fail "debug slowlog mirror"
curl -sf "http://$DADDR/debug/pprof/cmdline" > /dev/null || fail "pprof on debug listener"
kill -USR1 "$PID"
i=0
while ! grep -q 'slowlog:' "$LOG"; do
    i=$((i + 1))
    [ $i -lt 50 ] || fail "SIGUSR1 never dumped the slow log"
    sleep 0.1
done
# CI exports the slow-query ring as an artifact when asked to.
if [ -n "${SLOWLOG_OUT:-}" ]; then
    curl -sf "$BASE/debug/slowlog" > "$SLOWLOG_OUT" || fail "slowlog artifact export"
fi

# Error mapping: unknown dataset must be a structured 404.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/datasets/ghost/query" \
    -H 'Content-Type: application/json' -d '{"type":"point","point":[0,0,0]}')
[ "$CODE" = "404" ] || fail "unknown dataset returned $CODE, want 404"

# --- binary wire protocol ----------------------------------------------
# The same four answers over the binary listener, pipelined in a single
# touchwire batch, must be byte-identical to the HTTP ones (join stats
# stripped on the HTTP side — they carry wall-clock timings the wire
# protocol doesn't transmit).

WADDR=$(sed -n 's/.*touchserved wire listening on \([^ "]*\).*/\1/p' "$LOG" | head -n 1)
[ -n "$WADDR" ] || fail "server never printed its wire listen address"
echo "serve-smoke: wire listener on $WADDR"

strip_stats() { sed 's/,"stats":{[^}]*}//'; }
HTTP_ANSWERS=$(
    post /v1/datasets/smoke/query '{"type":"range","box":[0,0,0,50,50,50]}'
    post /v1/datasets/smoke/query '{"type":"point","point":[6,6,6]}'
    post /v1/datasets/smoke/query '{"type":"knn","point":[1,1,1],"k":2}'
    post /v1/datasets/smoke/join '{"boxes":[[4,4,4,6,6,6]]}' | strip_stats
)
WIRE_ANSWERS=$("$WIREBIN" -addr "$WADDR" -dataset smoke \
    'range:0,0,0,50,50,50' 'point:6,6,6' 'knn:1,1,1,2' 'join:4,4,4,6,6,6') \
    || fail "touchwire probe"
[ "$WIRE_ANSWERS" = "$HTTP_ANSWERS" ] || fail "binary answers differ from HTTP:
http: $HTTP_ANSWERS
wire: $WIRE_ANSWERS"

# Traced wire probe: -trace keeps stdout byte-identical (so the diff
# above still holds) and writes the OpTrace breakdown to stderr.
WIRE_TRACE="$WORK/wire-trace.json"
TRACED_WIRE=$("$WIREBIN" -addr "$WADDR" -dataset smoke -trace \
    'range:0,0,0,50,50,50' 2> "$WIRE_TRACE") || fail "traced touchwire probe"
echo "$TRACED_WIRE" | grep -q '"count":3' || fail "traced wire answer"
grep -q '"RequestID"' "$WIRE_TRACE" || fail "wire trace carries no request id"
grep -q '"Comparisons"' "$WIRE_TRACE" || fail "wire trace carries no engine counters"

# The binary path reports under its own metric classes and connection
# gauge. The gauge drops when the server notices touchwire hung up, so
# give it a moment.
METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -q 'touchserved_requests_total{class="wire_query"} 4' \
    || fail "wire_query metrics"
echo "$METRICS" | grep -q 'touchserved_requests_total{class="wire_join"} 1' \
    || fail "wire_join metrics"
i=0
while ! curl -sf "$BASE/metrics" | grep -q 'touchserved_wire_connections 0'; do
    i=$((i + 1))
    [ $i -lt 50 ] || fail "wire connection gauge never returned to 0"
    sleep 0.1
done

# --- incremental updates -----------------------------------------------
# PATCH one insert and one delete into the pending delta; the merged
# answer must reflect both immediately, and the delta gauges must show
# the pending entries.
PATCHED=$(curl -sf -X PATCH "$BASE/v1/datasets/smoke" -H 'Content-Type: application/json' \
    -d '{"insert":[[40,40,40,41,41,41]],"delete":[0]}') || fail "patch request"
echo "$PATCHED" | grep -q '"inserted_ids":\[3\]' || fail "patch assigned ids: $PATCHED"
echo "$PATCHED" | grep -q '"deleted":1' || fail "patch deleted count: $PATCHED"
post /v1/datasets/smoke/query '{"type":"range","box":[0,0,0,50,50,50]}' \
    | grep -q '"ids":\[1,2,3\]' || fail "range after patch"
METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -q 'touchserved_delta_inserts{dataset="smoke"} 1' \
    || fail "delta insert gauge"
echo "$METRICS" | grep -q 'touchserved_delta_tombstones{dataset="smoke"} 1' \
    || fail "delta tombstone gauge"
echo "$METRICS" | grep -q 'touchserved_requests_total{class="update"} 1' \
    || fail "update metric class"

# Graceful shutdown: SIGTERM must drain both listeners and exit 0.
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
[ "$STATUS" = "0" ] || fail "server exited with status $STATUS"
grep -q 'drained, bye' "$LOG" || fail "no clean-drain log line"
PID=

# --- crash recovery -----------------------------------------------------
# Two datasets in a durable catalog, kill -9 mid-serve, restart over the
# same directory: both must answer identically (same versions, same
# results) without a single rebuild.

SNAPDIR="$WORK/snapshots"
DATA2="$WORK/smoke2.txt"
printf '0 0 0 2 2 2\n8 8 8 12 12 12\n' > "$DATA2"

LOG="$WORK/crash-before.log"
"$BIN" -addr 127.0.0.1:0 -data-dir "$SNAPDIR" -load smoke="$DATA" -load other="$DATA2" > "$LOG" 2>&1 &
PID=$!
wait_addr
echo "serve-smoke: durable server on $BASE"

LIST_BEFORE=$(curl -sf "$BASE/v1/datasets")
echo "$LIST_BEFORE" | grep -q '"persisted":true' || fail "datasets not persisted"
RANGE_BEFORE=$(post /v1/datasets/smoke/query '{"type":"range","box":[0,0,0,50,50,50]}')
# Join stats carry wall-clock timings; strip_stats (defined above)
# removes them before comparing.
JOIN_BEFORE=$(post /v1/datasets/other/join '{"boxes":[[1,1,1,9,9,9]]}' | strip_stats)

kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=

# A junk snapshot dropped into the directory must be quarantined on
# restart, never served and never fatal.
printf 'not a snapshot' > "$SNAPDIR/bogus.snap"

LOG="$WORK/crash-after.log"
"$BIN" -addr 127.0.0.1:0 -data-dir "$SNAPDIR" > "$LOG" 2>&1 &
PID=$!
wait_addr
echo "serve-smoke: recovered server on $BASE"

grep -q 'recovered 2 dataset(s)' "$LOG" || fail "recovery log line"
grep -q '(1 quarantined)' "$LOG" || fail "quarantine count in recovery log"
[ -f "$SNAPDIR/corrupt/bogus.snap" ] || fail "junk snapshot not moved to corrupt/"
# No rebuilds: the only index-build log line comes from -load preloads.
grep -q 'built in' "$LOG" && fail "recovery rebuilt an index"

LIST_AFTER=$(curl -sf "$BASE/v1/datasets")
[ "$LIST_AFTER" = "$LIST_BEFORE" ] || fail "catalog listing changed across crash:
before: $LIST_BEFORE
after:  $LIST_AFTER"
RANGE_AFTER=$(post /v1/datasets/smoke/query '{"type":"range","box":[0,0,0,50,50,50]}')
[ "$RANGE_AFTER" = "$RANGE_BEFORE" ] || fail "range answer changed across crash"
JOIN_AFTER=$(post /v1/datasets/other/join '{"boxes":[[1,1,1,9,9,9]]}' | strip_stats)
[ "$JOIN_AFTER" = "$JOIN_BEFORE" ] || fail "join answer changed across crash"
curl -sf "$BASE/metrics" | grep -q 'touchserved_snapshot_errors_total 0' \
    || fail "snapshot errors after clean recovery"

kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
[ "$STATUS" = "0" ] || fail "recovered server exited with status $STATUS"
PID=

# --- routing tier -------------------------------------------------------
# Two replicas serving the same dataset behind a touchrouter. Routed
# query answers must be byte-identical to a direct backend's; the
# routed join differs only by the stats object (the wire protocol the
# router proxies over doesn't transmit it). Then kill -9 one replica:
# reads through the router must keep succeeding — the first one fails
# over inside the same call — and the router's metrics must record the
# ejection.

# wait_for LOGFILE PREFIX: block until the startup line "PREFIX ADDR"
# appears in LOGFILE, echo ADDR.
wait_for() {
    i=0
    while [ $i -lt 100 ]; do
        A=$(sed -n "s/.*$2 \([^ \"]*\).*/\1/p" "$1" | head -n 1)
        [ -n "$A" ] && { echo "$A"; return 0; }
        i=$((i + 1))
        sleep 0.1
    done
    return 1
}

BLOG1="$WORK/replica-a.log"
BLOG2="$WORK/replica-b.log"
"$BIN" -addr 127.0.0.1:0 -bin-addr 127.0.0.1:0 -node-id replica-a -load smoke="$DATA" > "$BLOG1" 2>&1 &
BPID1=$!
"$BIN" -addr 127.0.0.1:0 -bin-addr 127.0.0.1:0 -node-id replica-b -load smoke="$DATA" > "$BLOG2" 2>&1 &
BPID2=$!
WADDR1=$(wait_for "$BLOG1" "touchserved wire listening on") || fail "replica-a wire address"
WADDR2=$(wait_for "$BLOG2" "touchserved wire listening on") || fail "replica-b wire address"
HADDR1=$(wait_for "$BLOG1" "touchserved listening on") || fail "replica-a http address"

LOG="$WORK/router.log"
"$RBIN" -addr 127.0.0.1:0 -backends "$WADDR1,$WADDR2" -replication 2 \
    -health-interval 200ms > "$LOG" 2>&1 &
RPID=$!
RADDR=$(wait_for "$LOG" "touchrouter listening on") || fail "router address"
RBASE="http://$RADDR"
echo "serve-smoke: router on $RBASE over $WADDR1 $WADDR2"

rpost() { curl -sf -X POST "$RBASE$1" -H 'Content-Type: application/json' -d "$2"; }
dpost() { curl -sf -X POST "http://$HADDR1$1" -H 'Content-Type: application/json' -d "$2"; }

for Q in '{"type":"range","box":[0,0,0,50,50,50]}' \
         '{"type":"point","point":[6,6,6]}' \
         '{"type":"knn","point":[1,1,1],"k":2}'; do
    R=$(rpost /v1/datasets/smoke/query "$Q") || fail "routed query $Q"
    D=$(dpost /v1/datasets/smoke/query "$Q") || fail "direct query $Q"
    [ "$R" = "$D" ] || fail "routed answer differs from direct:
routed: $R
direct: $D"
done
RJ=$(rpost /v1/datasets/smoke/join '{"boxes":[[4,4,4,6,6,6]]}') || fail "routed join"
DJ=$(dpost /v1/datasets/smoke/join '{"boxes":[[4,4,4,6,6,6]]}' | strip_stats) || fail "direct join"
[ "$RJ" = "$DJ" ] || fail "routed join differs from direct:
routed: $RJ
direct: $DJ"

# Merged catalog: one row for smoke, provenance naming both replicas.
CAT=$(curl -sf "$RBASE/v1/datasets") || fail "routed catalog"
echo "$CAT" | grep -q '"backends":\["replica-a","replica-b"\]' \
    || fail "catalog provenance: $CAT"

kill -9 "$BPID1"
wait "$BPID1" 2>/dev/null || true
BPID1=

# Every read through the router must keep succeeding while the health
# checker notices the corpse; stop once the metrics show it ejected.
i=0
while :; do
    OUT=$(rpost /v1/datasets/smoke/query '{"type":"range","box":[0,0,0,50,50,50]}') \
        || fail "routed read failed after backend kill"
    echo "$OUT" | grep -q '"count":3' || fail "routed read wrong after kill: $OUT"
    curl -sf "$RBASE/metrics" \
        | grep -q 'touchrouter_backend_healthy{backend="replica-a"[^}]*} 0' && break
    i=$((i + 1))
    [ $i -lt 100 ] || fail "router never ejected the killed backend"
    sleep 0.1
done
EJ=$(curl -sf "$RBASE/metrics" | sed -n 's/^touchrouter_ejections_total \(.*\)/\1/p')
[ "${EJ:-0}" -ge 1 ] || fail "ejections_total is ${EJ:-unset} after kill"

kill -TERM "$RPID"
STATUS=0
wait "$RPID" || STATUS=$?
[ "$STATUS" = "0" ] || fail "router exited with status $STATUS"
grep -q 'drained, bye' "$LOG" || fail "no router clean-drain line"
RPID=
kill -TERM "$BPID2"
wait "$BPID2" 2>/dev/null || true
BPID2=

echo "serve-smoke: OK"
