#!/bin/sh
# serve-smoke: boot touchserved on a random port, exercise healthz, one
# query per shape (range/point/knn), a join, the catalog listing, the
# metrics endpoint and one error mapping over real HTTP, then assert a
# clean graceful shutdown on SIGTERM. CI runs this via `make serve-smoke`.
set -eu

WORK=$(mktemp -d)
BIN="$WORK/touchserved"
LOG="$WORK/touchserved.log"
DATA="$WORK/smoke.txt"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

go build -o "$BIN" ./cmd/touchserved

# Three known boxes so every query has a predictable answer.
printf '0 0 0 10 10 10\n5 5 5 15 15 15\n20 20 20 30 30 30\n' > "$DATA"

"$BIN" -addr 127.0.0.1:0 -load smoke="$DATA" > "$LOG" 2>&1 &
PID=$!

# The startup line carries the randomly chosen port.
ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*touchserved listening on //p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
    i=$((i + 1))
    sleep 0.1
done
[ -n "$ADDR" ] || fail "server never printed its listen address"
BASE="http://$ADDR"
echo "serve-smoke: server on $BASE"

post() { curl -sf -X POST "$BASE$1" -H 'Content-Type: application/json' -d "$2"; }

curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz"
curl -sf "$BASE/v1/datasets" | grep -q '"name":"smoke"' || fail "catalog listing"

post /v1/datasets/smoke/query '{"type":"range","box":[0,0,0,50,50,50]}' \
    | grep -q '"count":3' || fail "range query"
post /v1/datasets/smoke/query '{"type":"point","point":[6,6,6]}' \
    | grep -q '"count":2' || fail "point query"
post /v1/datasets/smoke/query '{"type":"knn","point":[1,1,1],"k":2}' \
    | grep -q '"count":2' || fail "knn query"
post /v1/datasets/smoke/join '{"boxes":[[4,4,4,6,6,6]]}' \
    | grep -q '"count":2' || fail "join"

# NDJSON streaming join: pair lines then a {"count":N} trailer marking a
# complete (non-truncated) stream.
NDJSON=$(curl -sf -X POST "$BASE/v1/datasets/smoke/join" \
    -H 'Content-Type: application/json' -H 'Accept: application/x-ndjson' \
    -d '{"boxes":[[4,4,4,6,6,6]]}')
echo "$NDJSON" | grep -q '^{"count":2}$' || fail "ndjson join trailer"
[ "$(echo "$NDJSON" | grep -c '^\[')" = "2" ] || fail "ndjson join pair lines"
curl -sf "$BASE/metrics" | grep -q 'touchserved_requests_total{class="query"} 3' \
    || fail "metrics"

# Error mapping: unknown dataset must be a structured 404.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/datasets/ghost/query" \
    -H 'Content-Type: application/json' -d '{"type":"point","point":[0,0,0]}')
[ "$CODE" = "404" ] || fail "unknown dataset returned $CODE, want 404"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
[ "$STATUS" = "0" ] || fail "server exited with status $STATUS"
grep -q 'drained, bye' "$LOG" || fail "no clean-drain log line"
PID=

echo "serve-smoke: OK"
