// Command touchrouter is the stateless routing tier in front of a
// fleet of touchserved replicas: it owns a consistent-hash ring over
// dataset names and proxies every request — HTTP and binary wire alike
// — to the ring owners over the wire protocol (see internal/router).
//
// Usage:
//
//	touchrouter -backends host1:9090,host2:9090[,...]
//	            [-addr :8081] [-bin-addr ADDR] [-replication 2]
//	            [-vnodes 128] [-pool 4] [-health-interval 2s]
//	            [-timeout 10s] [-grace 15s] [-log-format text|json]
//
// -backends lists the replicas' wire-protocol addresses; the ring is
// keyed by exactly these strings, so every router given the same list
// computes the same placement. -replication is R, the number of
// distinct ring owners per dataset: reads fail over among them,
// updates go to the primary only.
//
// The router is stateless — kill one, start another, nothing is lost;
// run several behind a TCP load balancer for a HA front tier. /healthz
// answers 503 once every backend is unreachable, so a balancer drains
// a router that can no longer serve. SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"touch/internal/router"
)

func main() {
	var (
		addr        = flag.String("addr", ":8081", "HTTP listen address (host:0 picks a free port)")
		binAddr     = flag.String("bin-addr", "", "binary wire-protocol listen address (empty = HTTP only)")
		backendsArg = flag.String("backends", "", "comma-separated touchserved wire addresses (required)")
		replication = flag.Int("replication", 2, "ring owners per dataset (reads fail over among them)")
		vnodes      = flag.Int("vnodes", router.DefaultVNodes, "virtual nodes per backend on the hash ring")
		poolSize    = flag.Int("pool", 4, "wire connections kept per backend")
		healthEvery = flag.Duration("health-interval", 2*time.Second, "backend health probe cadence")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request proxy budget")
		grace       = flag.Duration("grace", 15*time.Second, "shutdown drain budget")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "touchrouter: -log-format %q: want text or json\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var backends []string
	for _, b := range strings.Split(*backendsArg, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	if len(backends) == 0 {
		fatal("no backends: pass -backends host1:port,host2:port")
	}

	rt, err := router.New(router.Config{
		Backends:       backends,
		Replication:    *replication,
		VNodes:         *vnodes,
		PoolSize:       *poolSize,
		HealthInterval: *healthEvery,
		RequestTimeout: *timeout,
		Logger:         logger,
	})
	if err != nil {
		fatal("router init failed", "err", err)
	}
	logger.Info("touchrouter starting", "backends", len(backends), "replication", *replication)

	// The initial sweep runs before the listeners open, so the first
	// request already sees probed health state.
	rt.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	hs := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout + 15*time.Second,
		WriteTimeout:      *timeout + 30*time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// The parseable startup line smoke tests grab the port from.
	logger.Info(fmt.Sprintf("touchrouter listening on %s", ln.Addr()))

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	wireServing := false
	if *binAddr != "" {
		bln, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fatal("listen -bin-addr failed", "addr", *binAddr, "err", err)
		}
		logger.Info(fmt.Sprintf("touchrouter wire listening on %s", bln.Addr()))
		wireServing = true
		go func() {
			if err := rt.ServeWire(bln); err != nil {
				errc <- err
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("serve failed", "err", err)
	case <-ctx.Done():
	}

	logger.Info("draining", "grace", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if wireServing {
		if err := rt.ShutdownWire(shutdownCtx); err != nil {
			fatal("wire shutdown failed", "err", err)
		}
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fatal("shutdown failed", "err", err)
	}
	rt.Close()
	logger.Info("drained, bye")
}
