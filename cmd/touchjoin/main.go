// Command touchjoin joins two spatial datasets from files.
//
// Each input file holds one object per line as six numbers (min and max
// corner of the MBR):
//
//	minX minY minZ maxX maxY maxZ
//
// Usage:
//
//	touchjoin -a axons.txt -b dendrites.txt -eps 5 [-alg touch] [-out pairs.txt] [-stats]
//	touchjoin -a axons.txt -b dendrites.txt -timeout 30s -limit 1000000
//	touchjoin -a axons.txt -probes d1.txt,d2.txt,d3.txt -eps 5 [-stats]
//	touchjoin -a axons.txt -query range -box 0,0,0,100,100,100
//	touchjoin -a axons.txt -query point -point 50,50,50
//	touchjoin -a axons.txt -query knn -point 50,50,50 -k 10
//	touchjoin -a axons.txt -b dendrites.txt -insert new.txt -delete 3,17 -eps 5
//
// With -eps 0 the join reports intersecting pairs; with -eps > 0 it
// reports pairs within that distance. The output lists one "i j" pair of
// 0-based line indices per line; in -b mode pairs stream to the output
// incrementally as the engine finds them — constant memory regardless
// of result size — in emission order (deterministic with -workers 1,
// arbitrary otherwise; sort externally if a canonical order is needed).
// -stats prints the execution metrics (comparisons, filtered objects,
// memory, per-phase timings) to stderr.
//
// -timeout arms a deadline over the whole run: an expired join aborts
// inside the engine and the command exits 1. The abort is checked
// during the assignment and join phases; the index-construction phase
// of a run is not interruptible, and query mode — whose engine calls
// are microsecond-scale — checks the deadline between its phases
// instead of inside them. -limit stops a join after
// exactly that many pairs (0 = all) — the engine aborts early instead
// of discarding the excess. The -out file is only created once the
// first pair streams (or, for empty results and -count, on success),
// so a failed invocation never clobbers an existing file — with the
// one exception of a -timeout expiring mid-stream, which leaves the
// pairs written so far.
//
// -probes takes a comma-separated list of probe files and switches to
// index-reuse mode (TOUCH only): the tree is built once on dataset A and
// every probe file is joined against it, skipping the build phase per
// join — the paper's §4.3 scenario. Each probe's pairs are preceded by a
// "# file" header line; with -count one "file n" line per probe is
// printed instead.
//
// -query switches to single-probe query mode (TOUCH only): the tree is
// built on dataset A and answers one range, point or k-nearest-neighbor
// question instead of a join. "range" needs -box with the six query-box
// corner coordinates, "point" and "knn" need -point (and knn -k). Range
// and point queries print one matching 0-based line index per line,
// sorted; knn prints "i distance" lines in (distance, index) order.
// A non-zero -eps expands the indexed boxes, turning the predicates
// into "within ε of the box / point". The join-mode flags -count,
// -stats and -workers have no effect on queries.
//
// -insert and -delete exercise the incremental write path (TOUCH only,
// in -b join and -query modes): the index is built on dataset A as
// usual, then -delete tombstones the listed 0-based A line numbers and
// -insert appends the boxes of another file — IDs continue where A
// left off — and the join or query answers over the merged state,
// bit-identical to rebuilding from the edited dataset.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"touch"
)

func main() {
	var (
		fileA   = flag.String("a", "", "dataset A file (required)")
		fileB   = flag.String("b", "", "dataset B file (required unless -probes or -query is set)")
		probes  = flag.String("probes", "", "comma-separated probe files joined against one prebuilt index on A (TOUCH only)")
		eps     = flag.Float64("eps", 0, "distance predicate ε (0 = intersection join)")
		algName = flag.String("alg", string(touch.AlgTOUCH), "join algorithm")
		out     = flag.String("out", "", "output file (default stdout)")
		quiet   = flag.Bool("count", false, "print only the number of result pairs")
		stat    = flag.Bool("stats", false, "print execution statistics to stderr")
		workers = flag.Int("workers", 1, "worker goroutines per join (1 = single-threaded; TOUCH parallelizes its assignment and join phases internally, other algorithms run under the slab driver)")
		query   = flag.String("query", "", "single-probe query mode on an index built from A: range, point or knn")
		boxArg  = flag.String("box", "", "query box for -query range: minX,minY,minZ,maxX,maxY,maxZ")
		ptArg   = flag.String("point", "", "query point for -query point|knn: x,y,z")
		k       = flag.Int("k", 1, "neighbor count for -query knn")
		timeout = flag.Duration("timeout", 0, "cancel the run after this long (0 = no deadline); a canceled join exits 1")
		limit   = flag.Int64("limit", 0, "stop each join after exactly this many pairs (0 = all); the engine aborts early instead of discarding the excess")
		insFile = flag.String("insert", "", "file of boxes inserted after the index is built on A (incremental write path; TOUCH only)")
		delArg  = flag.String("delete", "", "comma-separated 0-based A line numbers deleted after the index is built on A (TOUCH only)")
	)
	flag.Parse()
	if *fileA == "" || (*fileB == "" && *probes == "" && *query == "") {
		fmt.Fprintln(os.Stderr, "touchjoin: -a and one of -b, -probes or -query are required")
		flag.Usage()
		os.Exit(2)
	}
	modes := 0
	for _, set := range []bool{*fileB != "", *probes != "", *query != ""} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "touchjoin: -b, -probes and -query are mutually exclusive")
		os.Exit(2)
	}

	a, err := readFile(*fileA)
	if err != nil {
		fatal(err)
	}

	updIns, updDel, err := readUpdates(*insFile, *delArg)
	if err != nil {
		fatal(err)
	}
	hasUpd := len(updIns) > 0 || len(updDel) > 0
	if hasUpd {
		if *probes != "" {
			fatal(fmt.Errorf("-insert/-delete are not supported with -probes"))
		}
		if alg := touch.Algorithm(*algName); alg != touch.AlgTOUCH {
			fatal(fmt.Errorf("-insert/-delete go through the incremental TOUCH index; -alg %q is not supported (%s)",
				*algName, algHint()))
		}
	}

	opt := &touch.Options{NoPairs: *quiet, Workers: *workers, Limit: *limit}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *query != "" {
		if alg := touch.Algorithm(*algName); alg != touch.AlgTOUCH {
			fatal(fmt.Errorf("-query answers through a prebuilt TOUCH index; -alg %q is not supported (%s)",
				*algName, algHint()))
		}
		if err := runQuery(ctx, a, *query, *boxArg, *ptArg, *k, *eps, *out, updIns, updDel); err != nil {
			fatal(err)
		}
		return
	}

	if *probes != "" {
		if alg := touch.Algorithm(*algName); alg != touch.AlgTOUCH {
			fatal(fmt.Errorf("-probes reuses a prebuilt TOUCH index; -alg %q is not supported (%s)",
				*algName, algHint()))
		}
		files := strings.Split(*probes, ",")
		if err := runProbes(ctx, a, files, *eps, opt, *out, *quiet, *stat); err != nil {
			fatal(err)
		}
		return
	}

	b, err := readFile(*fileB)
	if err != nil {
		fatal(err)
	}
	// Pairs stream to the output as the engine emits them, so everything
	// that can fail validation must fail before the output file is
	// touched: the algorithm name, the distance, the inputs (above).
	alg := touch.Algorithm(*algName)
	if !touch.ValidAlgorithm(alg) {
		fatal(fmt.Errorf("%w %q (%s)", touch.ErrUnknownAlgorithm, *algName, algHint()))
	}
	if *eps < 0 {
		fatal(fmt.Errorf("%w %g", touch.ErrNegativeDistance, *eps))
	}

	// Pair mode streams through a sink that opens the output lazily on
	// the first pair; count mode writes one number at the end. Either
	// way a join that fails before producing anything — including a
	// -timeout expiring during the build or assignment phases — never
	// touches an existing output file.
	var pw *pairWriter
	joinCtx := ctx
	if !*quiet {
		// The writer gets its own cancel handle: a failed write (full
		// disk, closed pipe) aborts the engine at its next checkpoint
		// instead of letting a long join finish into the void.
		var cancel context.CancelFunc
		joinCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		pw = &pairWriter{path: *out, cancel: cancel}
		opt.Sink = pw
	}
	var res *touch.Result
	if hasUpd {
		// The incremental path: index A, tombstone the -delete IDs, append
		// the -insert boxes (IDs continue after A's last line), and join
		// over the merged state — bit-identical to joining the edited file.
		cfg := opt.TOUCH
		if opt.Workers > 1 && cfg.Workers <= 1 {
			cfg.Workers = opt.Workers
		}
		var m *touch.Mutable
		if m, err = touch.NewMutable(a, cfg); err != nil {
			fatal(err)
		}
		m.SetCompactThreshold(-1) // one-shot process; folding buys nothing
		m.Delete(updDel)
		if _, err = m.Insert(boxesOf(updIns)); err != nil {
			fatal(err)
		}
		res, err = m.DistanceJoinCtx(joinCtx, b, *eps, opt)
	} else {
		res, err = touch.DistanceJoinCtx(joinCtx, alg, a, b, *eps, opt)
	}
	if err != nil {
		if pw != nil {
			// Keep every pair already streamed: without the flush, the
			// bufio tail is lost and the file can end on a torn line —
			// a wrong-but-parseable pair.
			pw.abortFlush()
			if pw.err != nil {
				// The write failure is what canceled the join; report it,
				// not the secondhand cancellation.
				fatal(pw.err)
			}
		}
		fatal(err)
	}
	if pw != nil {
		if err := pw.finish(); err != nil {
			fatal(err)
		}
	}

	if *stat {
		printStats(*algName, len(a), len(b), &res.Stats)
	}
	if *quiet {
		w, closeOut := openOut(*out)
		fmt.Fprintln(w, res.Stats.Results)
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		closeOut()
	}
}

// pairWriter streams result pairs to the output as the join delivers
// them — constant memory however large the result. The output is
// created lazily on the first pair, so a join canceled before emitting
// anything leaves an existing file untouched. The first write error
// sticks, suppresses the rest (a full disk should not print a million
// errors) and cancels the join so the engine stops producing pairs
// nobody can keep.
type pairWriter struct {
	path     string
	cancel   context.CancelFunc
	w        *bufio.Writer
	closeOut func()
	err      error
}

// Emit implements touch.Sink.
func (pw *pairWriter) Emit(a, b touch.ID) {
	if pw.err != nil {
		return
	}
	if pw.w == nil {
		pw.w, pw.closeOut = openOut(pw.path)
	}
	if _, pw.err = fmt.Fprintf(pw.w, "%d %d\n", a, b); pw.err != nil && pw.cancel != nil {
		pw.cancel()
	}
}

// finish flushes and closes the output after a successful join,
// creating it (empty) if the join produced no pairs — a succeeded run
// always leaves the requested file behind.
func (pw *pairWriter) finish() error {
	if pw.err != nil {
		return pw.err
	}
	if pw.w == nil {
		pw.w, pw.closeOut = openOut(pw.path)
	}
	if err := pw.w.Flush(); err != nil {
		return err
	}
	pw.closeOut()
	return nil
}

// abortFlush preserves what a canceled join already emitted: the
// buffered tail is flushed so the file ends on a complete line, and
// errors are ignored — the run is failing anyway. A join canceled
// before its first pair never opened the output; nothing to do.
func (pw *pairWriter) abortFlush() {
	if pw.w == nil {
		return
	}
	_ = pw.w.Flush()
	pw.closeOut()
}

// runProbes builds one TOUCH index on a and joins every probe file
// against it — the build phase runs exactly once. All probe files are
// read (and therefore validated) before any join runs, and the output
// file is only created once the first join has succeeded, so a failed
// or canceled invocation never truncates an existing file for nothing
// (a deadline expiring mid-sequence leaves the complete blocks already
// written). Pair blocks are separated by "# file" headers; with count
// one "file n" line per probe is written instead. The ctx deadline
// covers the whole sequence of joins; probe blocks are small enough
// per join that they stay sorted (unlike the streaming single-join
// mode).
func runProbes(ctx context.Context, a touch.Dataset, files []string, eps float64, opt *touch.Options, outPath string, count, stat bool) error {
	if eps < 0 {
		return fmt.Errorf("%w %g", touch.ErrNegativeDistance, eps)
	}
	names := make([]string, 0, len(files))
	datasets := make([]touch.Dataset, 0, len(files))
	for _, file := range files {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		b, err := readFile(file)
		if err != nil {
			return err
		}
		names = append(names, file)
		datasets = append(datasets, b)
	}
	if len(datasets) == 0 {
		return fmt.Errorf("-probes lists no files")
	}

	cfg := opt.TOUCH
	if opt.Workers > 1 && cfg.Workers <= 1 {
		cfg.Workers = opt.Workers
	}
	// The index is built on A, so the ε-expansion moves to the index
	// side once instead of every probe dataset per join.
	idx := touch.BuildIndex(a.Expand(eps), cfg)

	// The output opens lazily, after the first join has succeeded: a
	// -timeout expiring during the sequence then leaves an existing
	// file either untouched (first join) or holding the complete blocks
	// already written — never truncated for nothing.
	var (
		w        *bufio.Writer
		closeOut func()
	)
	ensureOut := func() {
		if w == nil {
			w, closeOut = openOut(outPath)
		}
	}
	for i, b := range datasets {
		res, err := idx.JoinCtx(ctx, b, opt)
		if err != nil {
			if w != nil {
				_ = w.Flush() // keep the blocks already written intact
				closeOut()
			}
			return err
		}
		if stat {
			fmt.Fprintf(os.Stderr, "--- %s\n", names[i])
			printStats(string(touch.AlgTOUCH), len(a), len(b), &res.Stats)
		}
		ensureOut()
		if count {
			fmt.Fprintf(w, "%s %d\n", names[i], res.Stats.Results)
			continue
		}
		fmt.Fprintf(w, "# %s\n", names[i])
		res.SortPairs()
		for _, p := range res.Pairs {
			fmt.Fprintf(w, "%d %d\n", p.A, p.B)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	closeOut()
	return nil
}

// parseFloats splits a comma-separated list into exactly n numbers.
func parseFloats(arg, flagName string, n int) ([]float64, error) {
	if arg == "" {
		return nil, fmt.Errorf("-%s is required for this query mode", flagName)
	}
	fields := strings.Split(arg, ",")
	if len(fields) != n {
		return nil, fmt.Errorf("-%s: want %d comma-separated numbers, got %d", flagName, n, len(fields))
	}
	out := make([]float64, n)
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %v", flagName, err)
		}
		out[i] = v
	}
	return out, nil
}

// runQuery builds one TOUCH index on a and answers a single range,
// point or knn query. The output file is only created once the query
// has succeeded, so a failed invocation never clobbers an existing
// file. Single-probe queries run in microseconds, so the -timeout ctx
// is only honored at the phase boundaries (before the index build and
// before the query), not inside them.
func runQuery(ctx context.Context, a touch.Dataset, mode, boxArg, ptArg string, k int, eps float64, outPath string, updIns touch.Dataset, updDel []touch.ID) error {
	if eps < 0 {
		return fmt.Errorf("%w %g", touch.ErrNegativeDistance, eps)
	}

	// Parse and validate all query arguments before building anything.
	var (
		queryBox touch.Box
		queryPt  touch.Point
	)
	switch mode {
	case "range":
		v, err := parseFloats(boxArg, "box", 6)
		if err != nil {
			return err
		}
		queryBox = touch.NewBox(touch.Point{v[0], v[1], v[2]}, touch.Point{v[3], v[4], v[5]})
	case "point", "knn":
		v, err := parseFloats(ptArg, "point", 3)
		if err != nil {
			return err
		}
		queryPt = touch.Point{v[0], v[1], v[2]}
		if mode == "knn" && k < 1 {
			return fmt.Errorf("%w (got %d)", touch.ErrInvalidK, k)
		}
	default:
		return fmt.Errorf("unknown -query mode %q (valid: range, point, knn)", mode)
	}

	// A non-zero ε expands the indexed boxes: results are the objects
	// within ε of the query box or point.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("query canceled: %w", err)
	}
	// With -insert/-delete the query answers over the incrementally
	// edited state: index A, apply the updates (inserted boxes get the
	// same ε-expansion the indexed side carries), query the merge.
	var ix interface {
		RangeQuery(touch.Box) ([]touch.ID, error)
		PointQuery(x, y, z float64) ([]touch.ID, error)
		KNN(touch.Point, int) ([]touch.Neighbor, error)
	}
	if len(updIns) > 0 || len(updDel) > 0 {
		m, err := touch.NewMutable(a.Expand(eps), touch.TOUCHConfig{})
		if err != nil {
			return err
		}
		m.SetCompactThreshold(-1) // one-shot process; folding buys nothing
		m.Delete(updDel)
		if _, err := m.Insert(boxesOf(updIns.Expand(eps))); err != nil {
			return err
		}
		ix = m
	} else {
		ix = touch.BuildIndex(a.Expand(eps), touch.TOUCHConfig{})
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("query canceled: %w", err)
	}

	var lines []string
	switch mode {
	case "range", "point":
		var ids []touch.ID
		var err error
		if mode == "range" {
			ids, err = ix.RangeQuery(queryBox)
		} else {
			ids, err = ix.PointQuery(queryPt[0], queryPt[1], queryPt[2])
		}
		if err != nil {
			return err
		}
		for _, id := range ids {
			lines = append(lines, strconv.Itoa(int(id)))
		}
	case "knn":
		nbrs, err := ix.KNN(queryPt, k)
		if err != nil {
			return err
		}
		for _, nb := range nbrs {
			lines = append(lines, fmt.Sprintf("%d %g", nb.ID, nb.Distance))
		}
	}

	// The query succeeded — only now touch the output file.
	w, closeOut := openOut(outPath)
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	closeOut()
	return nil
}

func printStats(alg string, sizeA, sizeB int, s *touch.Stats) {
	fmt.Fprintf(os.Stderr, "algorithm:    %s\n", alg)
	fmt.Fprintf(os.Stderr, "|A| × |B|:    %d × %d\n", sizeA, sizeB)
	fmt.Fprintf(os.Stderr, "results:      %d\n", s.Results)
	fmt.Fprintf(os.Stderr, "comparisons:  %d\n", s.Comparisons)
	fmt.Fprintf(os.Stderr, "filtered:     %d\n", s.Filtered)
	fmt.Fprintf(os.Stderr, "memory:       %s\n", touch.FormatBytes(s.MemoryBytes))
	fmt.Fprintf(os.Stderr, "build time:   %v\n", s.BuildTime)
	fmt.Fprintf(os.Stderr, "assign time:  %v\n", s.AssignTime)
	fmt.Fprintf(os.Stderr, "join time:    %v\n", s.JoinTime)
}

// algHint lists the selectable algorithm names.
func algHint() string {
	names := make([]string, 0, len(touch.Algorithms()))
	for _, alg := range touch.Algorithms() {
		names = append(names, string(alg))
	}
	return "valid -alg values: " + strings.Join(names, ", ")
}

// openOut returns a buffered writer on path (stdout when empty) and a
// close function for the underlying file. Call it only once the join is
// known to succeed: os.Create truncates an existing file.
func openOut(path string) (*bufio.Writer, func()) {
	if path == "" {
		return bufio.NewWriter(os.Stdout), func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return bufio.NewWriter(f), func() {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// readUpdates parses the incremental-update flags: the -insert box file
// and the comma-separated -delete ID list.
func readUpdates(insFile, delArg string) (touch.Dataset, []touch.ID, error) {
	var ins touch.Dataset
	if insFile != "" {
		var err error
		if ins, err = readFile(insFile); err != nil {
			return nil, nil, err
		}
	}
	var dels []touch.ID
	if delArg != "" {
		for _, f := range strings.Split(delArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, nil, fmt.Errorf("-delete: %v", err)
			}
			dels = append(dels, touch.ID(v))
		}
	}
	return ins, dels, nil
}

// boxesOf strips a dataset down to its boxes — Mutable.Insert assigns
// the IDs itself.
func boxesOf(ds touch.Dataset) []touch.Box {
	boxes := make([]touch.Box, len(ds))
	for i, o := range ds {
		boxes[i] = o.Box
	}
	return boxes
}

func readFile(path string) (touch.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return touch.ReadDataset(bufio.NewReader(f))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "touchjoin: %v\n", err)
	os.Exit(1)
}
