// Command touchjoin joins two spatial datasets from files.
//
// Each input file holds one object per line as six numbers (min and max
// corner of the MBR):
//
//	minX minY minZ maxX maxY maxZ
//
// Usage:
//
//	touchjoin -a axons.txt -b dendrites.txt -eps 5 [-alg touch] [-out pairs.txt] [-stats]
//
// With -eps 0 the join reports intersecting pairs; with -eps > 0 it
// reports pairs within that distance. The output lists one "i j" pair of
// 0-based line indices per line. -stats prints the execution metrics
// (comparisons, filtered objects, memory, per-phase timings) to stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"touch"
)

func main() {
	var (
		fileA   = flag.String("a", "", "dataset A file (required)")
		fileB   = flag.String("b", "", "dataset B file (required)")
		eps     = flag.Float64("eps", 0, "distance predicate ε (0 = intersection join)")
		algName = flag.String("alg", string(touch.AlgTOUCH), "join algorithm")
		out     = flag.String("out", "", "output file (default stdout)")
		quiet   = flag.Bool("count", false, "print only the number of result pairs")
		stat    = flag.Bool("stats", false, "print execution statistics to stderr")
		workers = flag.Int("workers", 1, "parallel slab workers (1 = single-threaded)")
	)
	flag.Parse()
	if *fileA == "" || *fileB == "" {
		fmt.Fprintln(os.Stderr, "touchjoin: both -a and -b are required")
		flag.Usage()
		os.Exit(2)
	}

	a, err := readFile(*fileA)
	if err != nil {
		fatal(err)
	}
	b, err := readFile(*fileB)
	if err != nil {
		fatal(err)
	}

	opt := &touch.Options{NoPairs: *quiet, Workers: *workers}
	res, err := touch.DistanceJoin(touch.Algorithm(*algName), a, b, *eps, opt)
	if err != nil {
		fatal(err)
	}

	if *stat {
		s := &res.Stats
		fmt.Fprintf(os.Stderr, "algorithm:    %s\n", *algName)
		fmt.Fprintf(os.Stderr, "|A| × |B|:    %d × %d\n", len(a), len(b))
		fmt.Fprintf(os.Stderr, "results:      %d\n", s.Results)
		fmt.Fprintf(os.Stderr, "comparisons:  %d\n", s.Comparisons)
		fmt.Fprintf(os.Stderr, "filtered:     %d\n", s.Filtered)
		fmt.Fprintf(os.Stderr, "memory:       %s\n", touch.FormatBytes(s.MemoryBytes))
		fmt.Fprintf(os.Stderr, "build time:   %v\n", s.BuildTime)
		fmt.Fprintf(os.Stderr, "assign time:  %v\n", s.AssignTime)
		fmt.Fprintf(os.Stderr, "join time:    %v\n", s.JoinTime)
	}

	if *quiet {
		fmt.Println(res.Stats.Results)
		return
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	res.SortPairs()
	for _, p := range res.Pairs {
		fmt.Fprintf(w, "%d %d\n", p.A, p.B)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func readFile(path string) (touch.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return touch.ReadDataset(bufio.NewReader(f))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "touchjoin: %v\n", err)
	os.Exit(1)
}
