package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"touch"
	"touch/internal/nl"
)

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	ds := touch.GenerateUniform(25, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := touch.WriteDataset(f, ds); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("read %d objects, want %d", len(got), len(ds))
	}
	for i := range ds {
		if got[i].Box != ds[i].Box {
			t.Fatalf("object %d: %v != %v", i, got[i].Box, ds[i].Box)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := readFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}

// writeDataset dumps a dataset to a new file under dir.
func writeDataset(t *testing.T, dir, name string, ds touch.Dataset) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := touch.WriteDataset(f, ds); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunProbes: the index-reuse mode must report, per probe file, the
// same result count as an independent one-shot DistanceJoin.
func TestRunProbes(t *testing.T) {
	dir := t.TempDir()
	a := touch.GenerateUniform(120, 1)
	const eps = 25
	var files []string
	var want []int64
	for seed := int64(2); seed < 5; seed++ {
		b := touch.GenerateUniform(200, seed)
		files = append(files, writeDataset(t, dir, fmt.Sprintf("b%d.txt", seed), b))
		ref, err := touch.DistanceJoin(touch.AlgTOUCH, a, b, eps, &touch.Options{NoPairs: true, KeepOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ref.Stats.Results)
	}

	outPath := filepath.Join(dir, "counts.txt")
	opt := &touch.Options{NoPairs: true}
	if err := runProbes(context.Background(), a, files, eps, opt, outPath, true, false); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != len(files) {
		t.Fatalf("got %d output lines, want %d", len(lines), len(files))
	}
	for i, line := range lines {
		wantLine := fmt.Sprintf("%s %d", files[i], want[i])
		if line != wantLine {
			t.Errorf("probe %d: got %q, want %q", i, line, wantLine)
		}
	}

	// Pair mode: blocks headed by "# file", pairs matching the count.
	pairPath := filepath.Join(dir, "pairs.txt")
	if err := runProbes(context.Background(), a, files[:1], eps, &touch.Options{}, pairPath, false, false); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(pairPath)
	if err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(string(raw))
	if !strings.HasPrefix(out, "# "+files[0]) {
		t.Fatalf("pair block must start with the probe header, got %q", out[:min(40, len(out))])
	}
	if got := int64(strings.Count(out, "\n")); got != want[0] {
		t.Fatalf("pair block has %d pairs, want %d", got, want[0])
	}
}

// TestRunProbesFailureKeepsOutFile: a failed invocation must not
// truncate a pre-existing output file — validation runs before
// os.Create.
func TestRunProbesFailureKeepsOutFile(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "out.txt")
	const precious = "precious previous results\n"
	if err := os.WriteFile(outPath, []byte(precious), 0o644); err != nil {
		t.Fatal(err)
	}
	a := touch.GenerateUniform(10, 1)
	missing := []string{filepath.Join(dir, "missing.txt")}
	if err := runProbes(context.Background(), a, missing, 0, &touch.Options{}, outPath, true, false); err == nil {
		t.Fatal("missing probe file must error")
	}
	if err := runProbes(context.Background(), a, nil, -1, &touch.Options{}, outPath, true, false); err == nil {
		t.Fatal("negative eps must error in probes mode")
	}
	// A canceled sequence whose first join never finished must not touch
	// the file either — the output opens lazily after the first success.
	probe := writeDataset(t, dir, "probe.txt", touch.GenerateUniform(10, 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := runProbes(ctx, a, []string{probe}, 0, &touch.Options{}, outPath, true, false); !errors.Is(err, touch.ErrJoinCanceled) {
		t.Fatalf("canceled probes run returned %v, want ErrJoinCanceled", err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != precious {
		t.Fatalf("failed runs clobbered the output file: %q", raw)
	}
}

func TestRunProbesNegativeEpsSentinel(t *testing.T) {
	err := runProbes(context.Background(), touch.GenerateUniform(10, 1), nil, -1, &touch.Options{}, "", true, false)
	if !errors.Is(err, touch.ErrNegativeDistance) {
		t.Fatalf("want ErrNegativeDistance, got %v", err)
	}
}

func TestAlgHintListsAllAlgorithms(t *testing.T) {
	hint := algHint()
	for _, alg := range touch.Algorithms() {
		if !strings.Contains(hint, string(alg)) {
			t.Errorf("algHint() misses %q: %s", alg, hint)
		}
	}
}

// TestMain doubles as the binary under test: when TOUCHJOIN_MAIN is
// set, the test executable runs the real main() so the exit-code tests
// below can assert the command-line contract end to end.
func TestMain(m *testing.M) {
	if os.Getenv("TOUCHJOIN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTouchjoin re-executes the test binary as touchjoin with args and
// returns its exit code and stderr.
func runTouchjoin(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TOUCHJOIN_MAIN=1")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running touchjoin: %v", err)
	}
	return ee.ExitCode(), stderr.String()
}

// TestFailurePaths asserts the exit-code contract of every failure
// mode — and that no output file is ever created by a failed
// invocation.
func TestFailurePaths(t *testing.T) {
	dir := t.TempDir()
	aPath := writeDataset(t, dir, "a.txt", touch.GenerateUniform(30, 1))
	missing := filepath.Join(dir, "missing.txt")

	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantMsg  string
	}{
		{"no-args", nil, 2, "-a and one of"},
		{"missing-b-flag", []string{"-a", aPath}, 2, "-a and one of"},
		{"conflicting-modes", []string{"-a", aPath, "-b", aPath, "-query", "range", "-box", "0,0,0,1,1,1"}, 2, "mutually exclusive"},
		{"unreadable-a", []string{"-a", missing, "-b", aPath}, 1, "no such file"},
		{"unreadable-b", []string{"-a", aPath, "-b", missing}, 1, "no such file"},
		{"bad-alg", []string{"-a", aPath, "-b", aPath, "-alg", "bogus"}, 1, "unknown algorithm"},
		{"negative-eps", []string{"-a", aPath, "-b", aPath, "-eps", "-3"}, 1, "negative distance"},
		{"probes-missing-file", []string{"-a", aPath, "-probes", missing}, 1, "no such file"},
		{"probes-empty-list", []string{"-a", aPath, "-probes", ","}, 1, "lists no files"},
		{"bad-query-mode", []string{"-a", aPath, "-query", "bogus"}, 1, "unknown -query mode"},
		{"range-without-box", []string{"-a", aPath, "-query", "range"}, 1, "-box is required"},
		{"range-bad-box", []string{"-a", aPath, "-query", "range", "-box", "1,2,3"}, 1, "want 6"},
		{"range-unparsable-box", []string{"-a", aPath, "-query", "range", "-box", "1,2,3,4,5,x"}, 1, "invalid syntax"},
		{"knn-without-point", []string{"-a", aPath, "-query", "knn", "-k", "3"}, 1, "-point is required"},
		{"knn-bad-k", []string{"-a", aPath, "-query", "knn", "-point", "1,2,3", "-k", "0"}, 1, "k must be at least 1"},
		{"query-bad-alg", []string{"-a", aPath, "-query", "range", "-box", "0,0,0,1,1,1", "-alg", "nl"}, 1, "not supported"},
		{"query-negative-eps", []string{"-a", aPath, "-query", "point", "-point", "1,2,3", "-eps", "-1"}, 1, "negative distance"},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			outPath := filepath.Join(dir, fmt.Sprintf("out-%d.txt", i))
			code, stderr := runTouchjoin(t, append(tc.args, "-out", outPath)...)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Errorf("stderr %q does not contain %q", stderr, tc.wantMsg)
			}
			if _, err := os.Stat(outPath); !os.IsNotExist(err) {
				t.Errorf("failed invocation created output file %s", outPath)
			}
		})
	}
}

// TestJoinLimitFlag: -limit must cap the streamed pair output at exactly
// N lines, and -count with -limit reports the truncated count.
func TestJoinLimitFlag(t *testing.T) {
	dir := t.TempDir()
	a := touch.GenerateUniform(150, 11)
	aPath := writeDataset(t, dir, "a.txt", a)
	// Self-join with a wide ε guarantees far more than 5 pairs.
	outPath := filepath.Join(dir, "limited.txt")
	code, stderr := runTouchjoin(t, "-a", aPath, "-b", aPath, "-eps", "200", "-limit", "5", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != 5 {
		t.Fatalf("limited output has %d lines, want 5", lines)
	}

	code, _ = runTouchjoin(t, "-a", aPath, "-b", aPath, "-eps", "200", "-limit", "7", "-count",
		"-out", filepath.Join(dir, "count.txt"))
	if code != 0 {
		t.Fatal("count+limit run failed")
	}
	raw, err = os.ReadFile(filepath.Join(dir, "count.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(raw)); got != "7" {
		t.Fatalf("limited count = %q, want 7", got)
	}
}

// TestJoinTimeoutFlag: an expired -timeout cancels the join inside the
// engine and exits 1 with the cancellation error.
func TestJoinTimeoutFlag(t *testing.T) {
	dir := t.TempDir()
	aPath := writeDataset(t, dir, "a.txt", touch.GenerateUniform(200, 12))
	code, stderr := runTouchjoin(t, "-a", aPath, "-b", aPath, "-eps", "100", "-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit %d (stderr %s), want 1", code, stderr)
	}
	if !strings.Contains(stderr, "join canceled") {
		t.Fatalf("stderr %q does not mention the cancellation", stderr)
	}
}

// TestCountTimeoutKeepsOutFile: count mode writes its one number only
// after the join succeeds, so a canceled run must not clobber an
// existing output file (the streaming pair mode is the documented
// exception).
func TestCountTimeoutKeepsOutFile(t *testing.T) {
	dir := t.TempDir()
	aPath := writeDataset(t, dir, "a.txt", touch.GenerateUniform(100, 15))
	outPath := filepath.Join(dir, "count.txt")
	const precious = "12345\n"
	if err := os.WriteFile(outPath, []byte(precious), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _ := runTouchjoin(t, "-a", aPath, "-b", aPath, "-eps", "100", "-count",
		"-timeout", "1ns", "-out", outPath)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != precious {
		t.Fatalf("canceled count run clobbered the output file: %q", raw)
	}

	// Pair mode opens its output lazily on the first pair, so a join
	// canceled before anything streamed must leave the file alone too.
	code, _ = runTouchjoin(t, "-a", aPath, "-b", aPath, "-eps", "100",
		"-timeout", "1ns", "-out", outPath)
	if code != 1 {
		t.Fatalf("pair-mode exit %d, want 1", code)
	}
	raw, err = os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != precious {
		t.Fatalf("canceled pair-mode run clobbered the output file: %q", raw)
	}
}

// TestJoinStreamedOutputMatchesOracle: the streamed (unsorted) pair
// lines of a single-threaded join are, as a set, exactly the oracle's.
func TestJoinStreamedOutputMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	a := touch.GenerateUniform(120, 13)
	b := touch.GenerateUniform(180, 14)
	aPath := writeDataset(t, dir, "a.txt", a)
	bPath := writeDataset(t, dir, "b.txt", b)
	outPath := filepath.Join(dir, "pairs.txt")
	code, stderr := runTouchjoin(t, "-a", aPath, "-b", bPath, "-eps", "40", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	ref, err := touch.DistanceJoin(touch.AlgNL, a, b, 40, &touch.Options{KeepOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool, len(ref.Pairs))
	for _, p := range ref.Pairs {
		want[fmt.Sprintf("%d %d", p.A, p.B)] = true
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != len(want) {
		t.Fatalf("streamed %d pairs, oracle has %d", len(lines), len(want))
	}
	for _, line := range lines {
		if !want[line] {
			t.Fatalf("streamed pair %q not in oracle", line)
		}
	}
}

// TestQueryModes runs each query mode end to end through the binary and
// checks the output against the brute-force oracles.
func TestQueryModes(t *testing.T) {
	dir := t.TempDir()
	ds := touch.GenerateUniform(150, 9)
	aPath := writeDataset(t, dir, "a.txt", ds)

	readLines := func(path string) []string {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		trimmed := strings.TrimSpace(string(raw))
		if trimmed == "" {
			return nil
		}
		return strings.Split(trimmed, "\n")
	}

	t.Run("range", func(t *testing.T) {
		outPath := filepath.Join(dir, "range.txt")
		code, stderr := runTouchjoin(t, "-a", aPath, "-query", "range",
			"-box", "100,100,100,400,400,400", "-out", outPath)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, stderr)
		}
		want := nl.RangeQuery(ds, touch.NewBox(touch.Point{100, 100, 100}, touch.Point{400, 400, 400}))
		lines := readLines(outPath)
		if len(lines) != len(want) {
			t.Fatalf("got %d ids, want %d", len(lines), len(want))
		}
		for i, line := range lines {
			if line != fmt.Sprint(want[i]) {
				t.Fatalf("line %d: got %q, want %d", i, line, want[i])
			}
		}
	})

	t.Run("point", func(t *testing.T) {
		outPath := filepath.Join(dir, "point.txt")
		// ε-expansion: every object within 600 of the center matches.
		code, stderr := runTouchjoin(t, "-a", aPath, "-query", "point",
			"-point", "500,500,500", "-eps", "600", "-out", outPath)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, stderr)
		}
		want := nl.PointQuery(ds.Expand(600), touch.Point{500, 500, 500})
		if lines := readLines(outPath); len(lines) != len(want) {
			t.Fatalf("got %d ids, want %d", len(lines), len(want))
		}
	})

	t.Run("knn", func(t *testing.T) {
		outPath := filepath.Join(dir, "knn.txt")
		code, stderr := runTouchjoin(t, "-a", aPath, "-query", "knn",
			"-point", "500,500,500", "-k", "7", "-out", outPath)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, stderr)
		}
		want := nl.KNN(ds, touch.Point{500, 500, 500}, 7)
		lines := readLines(outPath)
		if len(lines) != len(want) {
			t.Fatalf("got %d neighbors, want %d", len(lines), len(want))
		}
		for i, line := range lines {
			if wantLine := fmt.Sprintf("%d %g", want[i].ID, want[i].Distance); line != wantLine {
				t.Fatalf("line %d: got %q, want %q", i, line, wantLine)
			}
		}
	})
}
