package main

import (
	"os"
	"path/filepath"
	"testing"

	"touch"
)

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	ds := touch.GenerateUniform(25, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := touch.WriteDataset(f, ds); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("read %d objects, want %d", len(got), len(ds))
	}
	for i := range ds {
		if got[i].Box != ds[i].Box {
			t.Fatalf("object %d: %v != %v", i, got[i].Box, ds[i].Box)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := readFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}
