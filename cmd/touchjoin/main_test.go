package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"touch"
)

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	ds := touch.GenerateUniform(25, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := touch.WriteDataset(f, ds); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("read %d objects, want %d", len(got), len(ds))
	}
	for i := range ds {
		if got[i].Box != ds[i].Box {
			t.Fatalf("object %d: %v != %v", i, got[i].Box, ds[i].Box)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := readFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}

// writeDataset dumps a dataset to a new file under dir.
func writeDataset(t *testing.T, dir, name string, ds touch.Dataset) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := touch.WriteDataset(f, ds); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunProbes: the index-reuse mode must report, per probe file, the
// same result count as an independent one-shot DistanceJoin.
func TestRunProbes(t *testing.T) {
	dir := t.TempDir()
	a := touch.GenerateUniform(120, 1)
	const eps = 25
	var files []string
	var want []int64
	for seed := int64(2); seed < 5; seed++ {
		b := touch.GenerateUniform(200, seed)
		files = append(files, writeDataset(t, dir, fmt.Sprintf("b%d.txt", seed), b))
		ref, err := touch.DistanceJoin(touch.AlgTOUCH, a, b, eps, &touch.Options{NoPairs: true, KeepOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ref.Stats.Results)
	}

	outPath := filepath.Join(dir, "counts.txt")
	opt := &touch.Options{NoPairs: true}
	if err := runProbes(a, files, eps, opt, outPath, true, false); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != len(files) {
		t.Fatalf("got %d output lines, want %d", len(lines), len(files))
	}
	for i, line := range lines {
		wantLine := fmt.Sprintf("%s %d", files[i], want[i])
		if line != wantLine {
			t.Errorf("probe %d: got %q, want %q", i, line, wantLine)
		}
	}

	// Pair mode: blocks headed by "# file", pairs matching the count.
	pairPath := filepath.Join(dir, "pairs.txt")
	if err := runProbes(a, files[:1], eps, &touch.Options{}, pairPath, false, false); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(pairPath)
	if err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(string(raw))
	if !strings.HasPrefix(out, "# "+files[0]) {
		t.Fatalf("pair block must start with the probe header, got %q", out[:min(40, len(out))])
	}
	if got := int64(strings.Count(out, "\n")); got != want[0] {
		t.Fatalf("pair block has %d pairs, want %d", got, want[0])
	}
}

// TestRunProbesFailureKeepsOutFile: a failed invocation must not
// truncate a pre-existing output file — validation runs before
// os.Create.
func TestRunProbesFailureKeepsOutFile(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "out.txt")
	const precious = "precious previous results\n"
	if err := os.WriteFile(outPath, []byte(precious), 0o644); err != nil {
		t.Fatal(err)
	}
	a := touch.GenerateUniform(10, 1)
	missing := []string{filepath.Join(dir, "missing.txt")}
	if err := runProbes(a, missing, 0, &touch.Options{}, outPath, true, false); err == nil {
		t.Fatal("missing probe file must error")
	}
	if err := runProbes(a, nil, -1, &touch.Options{}, outPath, true, false); err == nil {
		t.Fatal("negative eps must error in probes mode")
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != precious {
		t.Fatalf("failed runs clobbered the output file: %q", raw)
	}
}

func TestRunProbesNegativeEpsSentinel(t *testing.T) {
	err := runProbes(touch.GenerateUniform(10, 1), nil, -1, &touch.Options{}, "", true, false)
	if !errors.Is(err, touch.ErrNegativeDistance) {
		t.Fatalf("want ErrNegativeDistance, got %v", err)
	}
}

func TestAlgHintListsAllAlgorithms(t *testing.T) {
	hint := algHint()
	for _, alg := range touch.Algorithms() {
		if !strings.Contains(hint, string(alg)) {
			t.Errorf("algHint() misses %q: %s", alg, hint)
		}
	}
}
