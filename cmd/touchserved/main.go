// Command touchserved serves TOUCH indexes over JSON-HTTP: a catalog of
// named, versioned, hot-swappable datasets answering range/point/knn
// queries and intersection/ε-distance joins, with admission control and
// Prometheus-text metrics (see internal/server for the API).
//
// Usage:
//
//	touchserved [-addr :8080] [-max-inflight 64] [-timeout 10s]
//	            [-max-body 8388608] [-workers 0] [-data-dir DIR]
//	            [-load name=path ...] [-slow-query-ms N]
//	            [-debug-addr ADDR] [-log-format text|json]
//	            [-bin-addr ADDR] [-node-id ID]
//
// -node-id names this instance in the wire hello ("node/<id>") so a
// routing tier (cmd/touchrouter) can label the backend stably; it
// defaults to the wire listener's bound host:port.
//
// -load preloads a text-format dataset file (ReadDataset syntax) under
// the given name, building its index before the listener opens; it may
// be repeated. The actual listen address is printed on startup —
// `-addr 127.0.0.1:0` picks a free port, for smoke tests.
//
// -data-dir makes the catalog durable: every successful build writes a
// checksummed snapshot to the directory before it becomes visible, and
// startup restores every valid snapshot from it — checksums verified,
// no rebuilds, serving within milliseconds. Corrupt or torn files are
// quarantined to DIR/corrupt with a logged reason instead of blocking
// startup. Without -data-dir the catalog is in-memory only (the
// pre-existing behavior).
//
// -slow-query-ms enables the bounded slow-query log: requests slower
// than the threshold are kept (with their full phase spans) in a ring
// served at GET /debug/slowlog; SIGUSR1 dumps the ring to the log.
// -debug-addr opens a second, operator-only listener carrying
// net/http/pprof and a /debug/slowlog mirror — keep it off any
// public interface.
//
// SIGINT/SIGTERM trigger a graceful drain: new requests are rejected
// with 503 while in-flight ones complete, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"touch"
	"touch/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		binAddr     = flag.String("bin-addr", "", "binary wire-protocol listen address (empty = HTTP only)")
		debugAddr   = flag.String("debug-addr", "", "debug listener with net/http/pprof and /debug/slowlog (empty = disabled; never expose publicly)")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrently admitted requests; more get 429")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request processing budget; expiry cancels the running computation")
		maxBody     = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		workers     = flag.Int("workers", 0, "default per-join parallelism (a request's workers field overrides)")
		grace       = flag.Duration("grace", 15*time.Second, "shutdown drain budget")
		dataDir     = flag.String("data-dir", "", "snapshot directory for a durable catalog (empty = in-memory only)")
		slowMs      = flag.Int("slow-query-ms", 0, "record requests slower than this many milliseconds in the slow-query log (0 = disabled)")
		nodeID      = flag.String("node-id", "", "stable instance name advertised in the wire hello (default: the wire listener's host:port)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	var preloads []string
	flag.Func("load", "preload a text dataset as name=path (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		preloads = append(preloads, v)
		return nil
	})
	flag.Parse()

	if *showVersion {
		fmt.Println(server.BuildInfo())
		return
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "touchserved: -log-format %q: want text or json\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	srv := server.New(server.Config{
		MaxInFlight:        *maxInFlight,
		RequestTimeout:     *timeout,
		MaxBodyBytes:       *maxBody,
		Workers:            *workers,
		DataDir:            *dataDir,
		SlowQueryThreshold: time.Duration(*slowMs) * time.Millisecond,
		Logger:             logger,
	})

	logger.Info("touchserved starting", "build", server.BuildInfo())

	if *dataDir != "" {
		start := time.Now()
		stats, err := srv.Recover()
		if err != nil {
			fatal("recovery failed", "data_dir", *dataDir, "err", err)
		}
		// The smoke tests grep this exact sentence; keep it stable.
		logger.Info(fmt.Sprintf("recovered %d dataset(s) from %s in %v (%d quarantined)",
			stats.Loaded, *dataDir, time.Since(start).Round(time.Millisecond), stats.Quarantined))
	}

	for _, p := range preloads {
		name, path, _ := strings.Cut(p, "=")
		if !server.ValidDatasetName(name) {
			fatal("-load name must be 1-128 chars of [A-Za-z0-9._-]", "arg", p)
		}
		f, err := os.Open(path)
		if err != nil {
			fatal("-load open failed", "arg", p, "err", err)
		}
		ds, err := touch.ReadDataset(f)
		f.Close()
		if err != nil {
			fatal("-load parse failed", "arg", p, "err", err)
		}
		start := time.Now()
		_, stats := srv.Load(name, ds, touch.TOUCHConfig{Workers: *workers})
		// "built in" marks an index build; the recovery smoke test asserts
		// its absence after a restore.
		logger.Info(fmt.Sprintf("loaded %q: %d objects, %s static, built in %v",
			name, stats.Objects, touch.FormatBytes(stats.StaticBytes), time.Since(start).Round(time.Millisecond)))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	// Read deadlines close the slow-body loophole: body decoding happens
	// before the handler's processing budget is enforced, so without
	// them a client trickling one byte at a time could pin an admission
	// slot indefinitely. Write/idle deadlines leave room for the handler
	// budget plus response transfer.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout + 15*time.Second,
		WriteTimeout:      *timeout + 30*time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// The parseable startup line smoke tests grab the port from.
	logger.Info(fmt.Sprintf("touchserved listening on %s", ln.Addr()))

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// The binary protocol is a second front door onto the same catalog,
	// admission slots and metrics — see internal/wire for the framing
	// and the client package for the pipelining dialer.
	wireServing := false
	if *nodeID != "" {
		srv.SetNodeID(*nodeID)
	}
	if *binAddr != "" {
		bln, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fatal("listen -bin-addr failed", "addr", *binAddr, "err", err)
		}
		if *nodeID == "" {
			// Routers key their logs and metrics on this ID; the bound
			// wire address is the natural default for one.
			srv.SetNodeID(bln.Addr().String())
		}
		logger.Info(fmt.Sprintf("touchserved wire listening on %s", bln.Addr()))
		wireServing = true
		go func() {
			if err := srv.ServeWire(bln); err != nil {
				errc <- err
			}
		}()
	}

	// The debug listener is a separate, operator-only mux: pprof plus a
	// plain-text slow-log mirror. Deliberately not mounted on the serving
	// mux — profiling endpoints have no place on a public interface.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			srv.DumpSlowLog(w)
		})
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal("listen -debug-addr failed", "addr", *debugAddr, "err", err)
		}
		logger.Info(fmt.Sprintf("touchserved debug listening on %s", dln.Addr()))
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	// SIGUSR1 dumps the slow-query log — forensics without restarting or
	// even having the debug listener open.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			srv.DumpSlowLog(os.Stderr)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("serve failed", "err", err)
	case <-ctx.Done():
	}

	logger.Info("draining", "grace", *grace)
	srv.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if wireServing {
		if err := srv.ShutdownWire(shutdownCtx); err != nil {
			fatal("wire shutdown failed", "err", err)
		}
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fatal("shutdown failed", "err", err)
	}
	logger.Info("drained, bye")
}
