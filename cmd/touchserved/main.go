// Command touchserved serves TOUCH indexes over JSON-HTTP: a catalog of
// named, versioned, hot-swappable datasets answering range/point/knn
// queries and intersection/ε-distance joins, with admission control and
// Prometheus-text metrics (see internal/server for the API).
//
// Usage:
//
//	touchserved [-addr :8080] [-max-inflight 64] [-timeout 10s]
//	            [-max-body 8388608] [-workers 0] [-data-dir DIR]
//	            [-load name=path ...]
//
// -load preloads a text-format dataset file (ReadDataset syntax) under
// the given name, building its index before the listener opens; it may
// be repeated. The actual listen address is printed on startup —
// `-addr 127.0.0.1:0` picks a free port, for smoke tests.
//
// -data-dir makes the catalog durable: every successful build writes a
// checksummed snapshot to the directory before it becomes visible, and
// startup restores every valid snapshot from it — checksums verified,
// no rebuilds, serving within milliseconds. Corrupt or torn files are
// quarantined to DIR/corrupt with a logged reason instead of blocking
// startup. Without -data-dir the catalog is in-memory only (the
// pre-existing behavior).
//
// SIGINT/SIGTERM trigger a graceful drain: new requests are rejected
// with 503 while in-flight ones complete, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"touch"
	"touch/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		binAddr     = flag.String("bin-addr", "", "binary wire-protocol listen address (empty = HTTP only)")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrently admitted requests; more get 429")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request processing budget; expiry cancels the running computation")
		maxBody     = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		workers     = flag.Int("workers", 0, "default per-join parallelism (a request's workers field overrides)")
		grace       = flag.Duration("grace", 15*time.Second, "shutdown drain budget")
		dataDir     = flag.String("data-dir", "", "snapshot directory for a durable catalog (empty = in-memory only)")
	)
	var preloads []string
	flag.Func("load", "preload a text dataset as name=path (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		preloads = append(preloads, v)
		return nil
	})
	flag.Parse()

	srv := server.New(server.Config{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Workers:        *workers,
		DataDir:        *dataDir,
		Logf:           log.Printf,
	})

	if *dataDir != "" {
		start := time.Now()
		stats, err := srv.Recover()
		if err != nil {
			log.Fatalf("touchserved: recovering from -data-dir %s: %v", *dataDir, err)
		}
		log.Printf("touchserved: recovered %d dataset(s) from %s in %v (%d quarantined)",
			stats.Loaded, *dataDir, time.Since(start).Round(time.Millisecond), stats.Quarantined)
	}

	for _, p := range preloads {
		name, path, _ := strings.Cut(p, "=")
		if !server.ValidDatasetName(name) {
			log.Fatalf("touchserved: -load %s: name must be 1-128 chars of [A-Za-z0-9._-]", p)
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("touchserved: -load %s: %v", p, err)
		}
		ds, err := touch.ReadDataset(f)
		f.Close()
		if err != nil {
			log.Fatalf("touchserved: -load %s: %v", p, err)
		}
		start := time.Now()
		_, stats := srv.Load(name, ds, touch.TOUCHConfig{Workers: *workers})
		log.Printf("touchserved: loaded %q: %d objects, %s static, built in %v",
			name, stats.Objects, touch.FormatBytes(stats.StaticBytes), time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("touchserved: listen: %v", err)
	}
	// Read deadlines close the slow-body loophole: body decoding happens
	// before the handler's processing budget is enforced, so without
	// them a client trickling one byte at a time could pin an admission
	// slot indefinitely. Write/idle deadlines leave room for the handler
	// budget plus response transfer.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout + 15*time.Second,
		WriteTimeout:      *timeout + 30*time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// The parseable startup line smoke tests grab the port from.
	log.Printf("touchserved listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// The binary protocol is a second front door onto the same catalog,
	// admission slots and metrics — see internal/wire for the framing
	// and the client package for the pipelining dialer.
	wireServing := false
	if *binAddr != "" {
		bln, err := net.Listen("tcp", *binAddr)
		if err != nil {
			log.Fatalf("touchserved: listen -bin-addr: %v", err)
		}
		log.Printf("touchserved wire listening on %s", bln.Addr())
		wireServing = true
		go func() {
			if err := srv.ServeWire(bln); err != nil {
				errc <- err
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("touchserved: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("touchserved: draining (grace %v)", *grace)
	srv.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if wireServing {
		if err := srv.ShutdownWire(shutdownCtx); err != nil {
			log.Fatalf("touchserved: wire shutdown: %v", err)
		}
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("touchserved: shutdown: %v", err)
	}
	log.Printf("touchserved: drained, bye")
}
