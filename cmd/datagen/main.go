// Command datagen writes synthetic spatial datasets in the text format
// the other tools consume (one MBR per line: six numbers).
//
// Usage:
//
//	datagen -dist uniform -n 160000 -seed 1 -out a.txt
//	datagen -dist neuro -n 644000 -seed 1 -out axons.txt         # axon MBRs
//	datagen -dist neuro-dendrites -n 1285000 -seed 1 -out d.txt  # dendrite MBRs
//
// The synthetic distributions (uniform, gaussian, clustered) follow the
// TOUCH paper's parameters: boxes with sides uniform in (0,1] in a 1000³
// universe. The neuro distributions emit the bounding boxes of the
// synthetic neuron-morphology cylinders.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"touch"
	"touch/internal/datagen"
)

func main() {
	var (
		dist = flag.String("dist", "uniform", "distribution: uniform, gaussian, clustered, neuro, neuro-dendrites")
		n    = flag.Int("n", 100_000, "number of objects")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var ds touch.Dataset
	switch *dist {
	case "neuro", "neuro-axons":
		cfg := datagen.DefaultNeuroConfig(*seed)
		cfg.Axons, cfg.Dendrites = *n, 0
		axons, _ := datagen.GenerateNeuro(cfg)
		ds = axons.Objects()
	case "neuro-dendrites":
		cfg := datagen.DefaultNeuroConfig(*seed)
		cfg.Axons, cfg.Dendrites = 0, *n
		_, dendrites := datagen.GenerateNeuro(cfg)
		ds = dendrites.Objects()
	default:
		d, err := datagen.ParseDistribution(*dist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(2)
		}
		ds = datagen.Generate(datagen.DefaultConfig(d, *n, *seed))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := touch.WriteDataset(bw, ds); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}
