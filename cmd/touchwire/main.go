// Command touchwire probes a touchserved binary listener: it pipelines
// every query given on the command line over one connection in a single
// batch, then prints one JSON answer per line, in request order, in
// exactly the shape the HTTP API uses (modulo join stats, which carry
// wall-clock timings and are never printed). That makes differential
// smoke tests one-line diffs: the same query over HTTP and over the
// wire must print the same bytes.
//
// Usage:
//
//	touchwire -addr HOST:PORT [-dataset NAME] [-eps E] [-trace] SPEC...
//
// where each SPEC is one of
//
//	range:minx,miny,minz,maxx,maxy,maxz
//	point:x,y,z
//	knn:x,y,z,k
//	join:minx,miny,minz,maxx,maxy,maxz[;more boxes...]
//	joincount:minx,...,maxz[;...]
//
// Answers go to stdout; any error (transport or server-side) is fatal
// with a nonzero exit. -trace asks the server for a per-query engine
// trace (request ID, phase timings, work counters) and prints one JSON
// trace per query to stderr — stdout stays byte-identical to the
// untraced run, so differential tests keep working.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"touch"
	"touch/client"
)

// queryJSON and joinJSON mirror the HTTP API's response shapes
// (internal/server queryResponse / joinResponse) so encoding/json
// produces identical bytes.
type queryJSON struct {
	Dataset   string         `json:"dataset"`
	Version   int64          `json:"version"`
	Type      string         `json:"type"`
	Count     int            `json:"count"`
	IDs       []touch.ID     `json:"ids,omitempty"`
	Neighbors []neighborJSON `json:"neighbors,omitempty"`
}

type neighborJSON struct {
	ID       touch.ID `json:"id"`
	Distance float64  `json:"distance"`
}

type joinJSON struct {
	Dataset      string        `json:"dataset"`
	Version      int64         `json:"version"`
	ProbeObjects int           `json:"probe_objects"`
	Count        int64         `json:"count"`
	Pairs        [][2]touch.ID `json:"pairs,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("touchwire: ")
	var (
		addr    = flag.String("addr", "", "binary listener address (required)")
		dataset = flag.String("dataset", "default", "dataset every query targets")
		eps     = flag.Float64("eps", 0, "join ε distance")
		timeout = flag.Duration("timeout", 30*time.Second, "overall deadline")
		traced  = flag.Bool("trace", false, "request per-query engine traces; traces print to stderr as JSON")
	)
	flag.Parse()
	if *addr == "" || flag.NArg() == 0 {
		log.Fatalf("usage: touchwire -addr HOST:PORT [-dataset NAME] SPEC...")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c, err := client.Dial(ctx, *addr)
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer c.Close()

	if *traced {
		runTraced(ctx, c, *dataset, *eps, flag.Args())
		return
	}

	// One batch, one write burst: every spec is in flight before the
	// first answer is read back.
	b := c.Batch()
	gets := make([]func() error, 0, flag.NArg())
	enc := json.NewEncoder(os.Stdout)
	for _, spec := range flag.Args() {
		kind, arg, ok := strings.Cut(spec, ":")
		if !ok {
			log.Fatalf("bad spec %q: want kind:args", spec)
		}
		switch kind {
		case "range":
			f := floats(spec, arg, 6)
			box := touch.Box{Min: touch.Point{f[0], f[1], f[2]}, Max: touch.Point{f[3], f[4], f[5]}}
			fut := b.Range(*dataset, box)
			gets = append(gets, func() error {
				v, ids, err := fut.Get(ctx)
				if err != nil {
					return err
				}
				return enc.Encode(queryJSON{Dataset: *dataset, Version: v, Type: "range", Count: len(ids), IDs: ids})
			})
		case "point":
			f := floats(spec, arg, 3)
			fut := b.Point(*dataset, touch.Point{f[0], f[1], f[2]})
			gets = append(gets, func() error {
				v, ids, err := fut.Get(ctx)
				if err != nil {
					return err
				}
				return enc.Encode(queryJSON{Dataset: *dataset, Version: v, Type: "point", Count: len(ids), IDs: ids})
			})
		case "knn":
			f := floats(spec, arg, 4)
			k := int(f[3])
			fut := b.KNN(*dataset, touch.Point{f[0], f[1], f[2]}, k)
			gets = append(gets, func() error {
				v, nbrs, err := fut.Get(ctx)
				if err != nil {
					return err
				}
				out := queryJSON{Dataset: *dataset, Version: v, Type: "knn", Count: len(nbrs)}
				for _, n := range nbrs {
					out.Neighbors = append(out.Neighbors, neighborJSON{ID: n.ID, Distance: n.Distance})
				}
				return enc.Encode(out)
			})
		case "join", "joincount":
			boxes := joinBoxes(spec, arg)
			spec := client.JoinSpec{Boxes: boxes, Eps: *eps}
			if kind == "joincount" {
				fut := b.JoinCount(*dataset, spec)
				gets = append(gets, func() error {
					v, n, err := fut.Get(ctx)
					if err != nil {
						return err
					}
					return enc.Encode(joinJSON{Dataset: *dataset, Version: v, ProbeObjects: len(boxes), Count: n})
				})
			} else {
				fut := b.Join(*dataset, spec)
				gets = append(gets, func() error {
					v, pairs, n, err := fut.Get(ctx)
					if err != nil {
						return err
					}
					out := joinJSON{Dataset: *dataset, Version: v, ProbeObjects: len(boxes), Count: n}
					for _, p := range pairs {
						out.Pairs = append(out.Pairs, [2]touch.ID{p.A, p.B})
					}
					return enc.Encode(out)
				})
			}
		default:
			log.Fatalf("bad spec %q: unknown kind %q", spec, kind)
		}
	}
	if err := b.Send(); err != nil {
		log.Fatalf("send batch: %v", err)
	}
	for _, get := range gets {
		if err := get(); err != nil {
			log.Fatalf("%v", err)
		}
	}
}

// runTraced answers each spec with a traced unary call: the answer goes
// to stdout in the usual shape, the engine trace to stderr. Sequential
// round trips instead of one pipelined batch — tracing is a diagnosis
// mode, not a throughput mode.
func runTraced(ctx context.Context, c *client.Conn, dataset string, eps float64, specs []string) {
	enc := json.NewEncoder(os.Stdout)
	tenc := json.NewEncoder(os.Stderr)
	emitTrace := func(tr *client.Trace) {
		if tr != nil {
			_ = tenc.Encode(tr)
		}
	}
	for _, spec := range specs {
		kind, arg, ok := strings.Cut(spec, ":")
		if !ok {
			log.Fatalf("bad spec %q: want kind:args", spec)
		}
		var err error
		switch kind {
		case "range":
			f := floats(spec, arg, 6)
			box := touch.Box{Min: touch.Point{f[0], f[1], f[2]}, Max: touch.Point{f[3], f[4], f[5]}}
			var v int64
			var ids []touch.ID
			var tr *client.Trace
			if v, ids, tr, err = c.RangeTraced(ctx, dataset, box); err == nil {
				emitTrace(tr)
				err = enc.Encode(queryJSON{Dataset: dataset, Version: v, Type: "range", Count: len(ids), IDs: ids})
			}
		case "point":
			f := floats(spec, arg, 3)
			var v int64
			var ids []touch.ID
			var tr *client.Trace
			if v, ids, tr, err = c.PointTraced(ctx, dataset, touch.Point{f[0], f[1], f[2]}); err == nil {
				emitTrace(tr)
				err = enc.Encode(queryJSON{Dataset: dataset, Version: v, Type: "point", Count: len(ids), IDs: ids})
			}
		case "knn":
			f := floats(spec, arg, 4)
			var v int64
			var nbrs []touch.Neighbor
			var tr *client.Trace
			if v, nbrs, tr, err = c.KNNTraced(ctx, dataset, touch.Point{f[0], f[1], f[2]}, int(f[3])); err == nil {
				emitTrace(tr)
				out := queryJSON{Dataset: dataset, Version: v, Type: "knn", Count: len(nbrs)}
				for _, n := range nbrs {
					out.Neighbors = append(out.Neighbors, neighborJSON{ID: n.ID, Distance: n.Distance})
				}
				err = enc.Encode(out)
			}
		case "join", "joincount":
			boxes := joinBoxes(spec, arg)
			js := client.JoinSpec{Boxes: boxes, Eps: eps}
			if kind == "joincount" {
				var v, n int64
				var tr *client.Trace
				if v, n, tr, err = c.JoinCountTraced(ctx, dataset, js); err == nil {
					emitTrace(tr)
					err = enc.Encode(joinJSON{Dataset: dataset, Version: v, ProbeObjects: len(boxes), Count: n})
				}
			} else {
				var v, n int64
				var pairs []touch.Pair
				var tr *client.Trace
				if v, pairs, n, tr, err = c.JoinTraced(ctx, dataset, js); err == nil {
					emitTrace(tr)
					out := joinJSON{Dataset: dataset, Version: v, ProbeObjects: len(boxes), Count: n}
					for _, p := range pairs {
						out.Pairs = append(out.Pairs, [2]touch.ID{p.A, p.B})
					}
					err = enc.Encode(out)
				}
			}
		default:
			log.Fatalf("bad spec %q: unknown kind %q", spec, kind)
		}
		if err != nil {
			log.Fatalf("%v", err)
		}
	}
}

// floats parses arg as exactly n comma-separated numbers.
func floats(spec, arg string, n int) []float64 {
	parts := strings.Split(arg, ",")
	if len(parts) != n {
		log.Fatalf("bad spec %q: want %d comma-separated numbers, got %d", spec, n, len(parts))
	}
	out := make([]float64, n)
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("bad spec %q: %v", spec, err)
		}
		out[i] = f
	}
	return out
}

// joinBoxes parses semicolon-separated 6-number probe boxes.
func joinBoxes(spec, arg string) []touch.Box {
	var boxes []touch.Box
	for _, part := range strings.Split(arg, ";") {
		f := floats(spec, part, 6)
		boxes = append(boxes, touch.Box{Min: touch.Point{f[0], f[1], f[2]}, Max: touch.Point{f[3], f[4], f[5]}})
	}
	if len(boxes) == 0 {
		log.Fatalf("bad spec %q: no boxes", spec)
	}
	return boxes
}
