package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"

	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"touch"
	"touch/client"
	"touch/internal/router"
	"touch/internal/server"
	"touch/internal/testutil"
)

// signalSink closes its channel on the first emitted pair — the
// cancellation-latency point uses it to know the join is mid-flight.
type signalSink struct {
	once sync.Once
	ch   chan struct{}
}

// Emit implements touch.Sink.
func (s *signalSink) Emit(a, b touch.ID) { s.once.Do(func() { close(s.ch) }) }

// benchPoint is one measured configuration of the fixed-workload suite.
type benchPoint struct {
	Name        string  `json:"name"`
	Algorithm   string  `json:"algorithm"`
	Workers     int     `json:"workers,omitempty"`
	Clients     int     `json:"clients,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	BaselineNs  int64   `json:"baseline_ns,omitempty"`
	QueriesPerS float64 `json:"queries_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	BuildNs     int64   `json:"build_ns"`
	AssignNs    int64   `json:"assign_ns"`
	JoinNs      int64   `json:"join_ns"`
	Comparisons int64   `json:"comparisons"`
	Results     int64   `json:"results"`
	MemoryBytes int64   `json:"memory_bytes"`
}

// benchReport is the JSON document `make bench` writes to BENCH_N.json.
type benchReport struct {
	GoVersion string       `json:"go_version"`
	CPUs      int          `json:"cpus"`
	Scale     float64      `json:"scale"`
	Seed      int64        `json:"seed"`
	SizeA     int          `json:"size_a"`
	SizeB     int          `json:"size_b"`
	Eps       float64      `json:"eps"`
	Points    []benchPoint `json:"points"`
}

// measureClients runs clients goroutines of perClient operations each
// and reports the aggregate as one bench point: NsPerOp is the mean
// per-op latency a single client sees, QueriesPerS the throughput
// across clients. With collectAllocs, AllocsPerOp is attributed from
// the process-wide malloc delta — meaningful for the in-process serving
// modes, skipped for the HTTP modes where the server's own goroutines
// dominate the delta. The first run error aborts the measurement.
func measureClients(name string, clients, perClient int, collectAllocs bool, run func(i int) error) (benchPoint, error) {
	var ms0, ms1 runtime.MemStats
	if collectAllocs {
		runtime.ReadMemStats(&ms0)
	}
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				if err := run(cl*perClient + q); err != nil {
					errc <- err
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errc)
	for err := range errc {
		return benchPoint{}, fmt.Errorf("%s: %w", name, err)
	}
	total := clients * perClient
	pt := benchPoint{
		Name:        name,
		Algorithm:   string(touch.AlgTOUCH),
		Clients:     clients,
		NsPerOp:     wall.Nanoseconds() / int64(perClient),
		QueriesPerS: float64(total) / wall.Seconds(),
	}
	if collectAllocs {
		runtime.ReadMemStats(&ms1)
		pt.AllocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / int64(total)
	}
	return pt, nil
}

// runBenchSuite joins one uniform workload (the microbenchmark shape of
// bench_test.go: 8K × 24K at the default scale, ε=5) with every
// algorithm, plus the TOUCH core at several worker counts, reporting
// the best of three runs per configuration. The serving sections
// measure concurrent-client throughput (latency and queries/sec) on
// one shared prebuilt index, for whole-dataset joins (serve-cN) and
// for single-probe range and kNN queries (range-cN, knn-cN).
func runBenchSuite(scale float64, seed int64, jsonPath string) error {
	if scale <= 0 {
		scale = 0.02
	}
	sizeA := max(int(400_000*scale), 1)
	sizeB := max(int(1_200_000*scale), 1)
	const eps = 5.0
	a := touch.GenerateUniform(sizeA, seed)
	b := touch.GenerateUniform(sizeB, seed+1)

	report := benchReport{
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Scale:     scale,
		Seed:      seed,
		SizeA:     sizeA,
		SizeB:     sizeB,
		Eps:       eps,
	}

	measure := func(name string, alg touch.Algorithm, workers int) error {
		var best benchPoint
		for rep := 0; rep < 3; rep++ {
			opt := &touch.Options{NoPairs: true}
			opt.TOUCH.Workers = workers
			start := time.Now()
			res, err := touch.DistanceJoin(alg, a, b, eps, opt)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			ns := time.Since(start).Nanoseconds()
			if rep == 0 || ns < best.NsPerOp {
				best = benchPoint{
					Name:        name,
					Algorithm:   string(alg),
					Workers:     workers,
					NsPerOp:     ns,
					BuildNs:     res.Stats.BuildTime.Nanoseconds(),
					AssignNs:    res.Stats.AssignTime.Nanoseconds(),
					JoinNs:      res.Stats.JoinTime.Nanoseconds(),
					Comparisons: res.Stats.Comparisons,
					Results:     res.Stats.Results,
					MemoryBytes: res.Stats.MemoryBytes,
				}
			}
		}
		report.Points = append(report.Points, best)
		return nil
	}

	for _, alg := range touch.Algorithms() {
		if err := measure(string(alg), alg, 0); err != nil {
			return err
		}
	}
	for _, workers := range []int{2, 4, 8} {
		if err := measure(fmt.Sprintf("touch-w%d", workers), touch.AlgTOUCH, workers); err != nil {
			return err
		}
	}

	// Serving throughput: one immutable index shared by N concurrent
	// clients, each drawing pooled probe state per query. NsPerOp is the
	// mean per-query latency a client sees; QueriesPerS the aggregate
	// throughput across clients.
	idx := touch.BuildIndex(a.Expand(eps), touch.TOUCHConfig{})
	probe := b // the index side carries the ε-expansion
	const queriesPerClient = 6
	for warm := 0; warm < 2; warm++ {
		idx.Join(probe, &touch.Options{NoPairs: true}) // populate the probe pool
	}
	for _, clients := range []int{1, 2, 4, 8} {
		pt, err := measureClients(fmt.Sprintf("serve-c%d", clients), clients, queriesPerClient, true,
			func(int) error { idx.Join(probe, &touch.Options{NoPairs: true}); return nil })
		if err != nil {
			return err
		}
		report.Points = append(report.Points, pt)
	}

	// Tracing overhead: the same prebuilt-index join on the nil-span fast
	// path every untraced request rides (BaselineNs) vs with a live span
	// recording phases and counters (NsPerOp). The two should be
	// indistinguishable beyond run-to-run noise — tracing is opt-in per
	// request precisely so the default path pays nothing.
	{
		var untraced, traced int64
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			idx.Join(probe, &touch.Options{NoPairs: true})
			if ns := time.Since(start).Nanoseconds(); rep == 0 || ns < untraced {
				untraced = ns
			}
		}
		var sp touch.Span
		for rep := 0; rep < 5; rep++ {
			sp = touch.Span{}
			start := time.Now()
			idx.Join(probe, &touch.Options{NoPairs: true, Trace: &sp})
			if ns := time.Since(start).Nanoseconds(); rep == 0 || ns < traced {
				traced = ns
			}
		}
		report.Points = append(report.Points, benchPoint{
			Name: "trace-overhead", Algorithm: string(touch.AlgTOUCH),
			NsPerOp: traced, BaselineNs: untraced,
			Comparisons: sp.Comparisons, Results: sp.Results,
		})
	}

	// Streaming join: the same whole-dataset join consumed pair by pair
	// off Index.JoinSeq instead of materialized — the iterator's channel
	// batching is the only cost over serve-c1, and the O(1)-memory path
	// the server's NDJSON mode rides on. Results carries the streamed
	// pair count; QueriesPerS the pair throughput.
	{
		var best benchPoint
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			n := int64(0)
			for _, err := range idx.JoinSeq(context.Background(), probe, nil) {
				if err != nil {
					return fmt.Errorf("stream-join: %w", err)
				}
				n++
			}
			ns := time.Since(start).Nanoseconds()
			if rep == 0 || ns < best.NsPerOp {
				best = benchPoint{
					Name:        "stream-join",
					Algorithm:   string(touch.AlgTOUCH),
					NsPerOp:     ns,
					Results:     n,
					QueriesPerS: float64(n) / (float64(ns) / float64(time.Second)),
				}
			}
		}
		report.Points = append(report.Points, best)
	}

	// Cancellation latency: how long after ctx cancellation the engine
	// takes to quiesce (JoinCtx returning ErrJoinCanceled), measured from
	// the cancel call once the join is demonstrably mid-flight (first
	// pair delivered). This is the tail a timed-out HTTP request holds
	// its admission slot for — the bound behind "the slot frees
	// immediately".
	{
		var best benchPoint
		for rep := 0; rep < 3; rep++ {
			ctx, cancel := context.WithCancel(context.Background())
			first := &signalSink{ch: make(chan struct{})}
			ret := make(chan error, 1)
			go func() {
				_, err := idx.JoinCtx(ctx, probe, &touch.Options{Sink: first})
				ret <- err
			}()
			select {
			case <-first.ch:
			case <-ret:
				// Zero result pairs (possible at tiny -scale): nothing to
				// observe mid-flight; fall through and measure the unwind.
				close(ret) // re-selectable below
			}
			start := time.Now()
			cancel()
			// A join that finishes before the cancel lands still measures
			// the (tiny) unwind cost, so the error is irrelevant here.
			<-ret
			ns := time.Since(start).Nanoseconds()
			if rep == 0 || ns < best.NsPerOp {
				best = benchPoint{Name: "cancel-latency", Algorithm: string(touch.AlgTOUCH), NsPerOp: ns}
			}
		}
		report.Points = append(report.Points, best)
	}

	// Query serving: the same shared index answers single-probe range
	// and kNN questions from N concurrent clients. Queries are orders of
	// magnitude cheaper than joins, so each client runs a fixed batch of
	// pre-generated queries; NsPerOp is the mean per-query latency and
	// AllocsPerOp the steady-state allocations (the pooled probe scratch
	// should leave only the result slice).
	queryIdx := touch.BuildIndex(a, touch.TOUCHConfig{})
	const queryShapes = 256
	boxes, points, _ := testutil.QueryWorkload(seed+2, queryShapes)
	const queriesPerQueryClient = 4096
	queryModes := []struct {
		name string
		run  func(i int) error
	}{
		{"range", func(i int) error {
			_, err := queryIdx.RangeQuery(boxes[i%queryShapes])
			return err
		}},
		{"knn", func(i int) error {
			_, err := queryIdx.KNN(points[i%queryShapes], 10)
			return err
		}},
	}
	for _, mode := range queryModes {
		if err := mode.run(0); err != nil { // warm the probe pool
			return fmt.Errorf("%s: %w", mode.name, err)
		}
		for _, clients := range []int{1, 4, 8} {
			pt, err := measureClients(fmt.Sprintf("%s-c%d", mode.name, clients),
				clients, queriesPerQueryClient, true, mode.run)
			if err != nil {
				return err
			}
			report.Points = append(report.Points, pt)
		}
	}

	// Persistence: what a durable catalog costs and saves. For each size,
	// cold-start-N is the full index rebuild a restart would pay without
	// snapshots, snapshot-save-N the encode+write+fsync on the build
	// path, and snapshot-load-N the read+decode+verify path a restart
	// actually takes — the load/cold-start ratio is the restart speedup.
	// Sizes are fixed (8K/64K objects) rather than scaled so reports are
	// comparable across -scale values; MemoryBytes carries the snapshot
	// file size.
	if err := func() error {
		dir, err := os.MkdirTemp("", "touchbench-snap")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		for _, n := range []int{8192, 65536} {
			label := fmt.Sprintf("%dk", n/1024)
			ds := touch.GenerateUniform(n, seed+3)

			var ix *touch.Index
			var coldBest int64
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				ix = touch.BuildIndex(ds, touch.TOUCHConfig{})
				if ns := time.Since(start).Nanoseconds(); rep == 0 || ns < coldBest {
					coldBest = ns
				}
			}
			report.Points = append(report.Points, benchPoint{
				Name: "cold-start-" + label, Algorithm: string(touch.AlgTOUCH),
				NsPerOp: coldBest, BuildNs: coldBest,
			})

			info := touch.SnapshotInfo{Name: "bench", Version: 1, BuiltAt: time.Now()}
			path := filepath.Join(dir, "bench-"+label+".snap")
			var saveBest, size int64
			for rep := 0; rep < 3; rep++ {
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				start := time.Now()
				if size, err = touch.WriteSnapshot(f, info, ds, ix); err == nil {
					err = f.Sync()
				}
				ns := time.Since(start).Nanoseconds()
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return fmt.Errorf("snapshot-save-%s: %w", label, err)
				}
				if rep == 0 || ns < saveBest {
					saveBest = ns
				}
			}
			report.Points = append(report.Points, benchPoint{
				Name: "snapshot-save-" + label, Algorithm: string(touch.AlgTOUCH),
				NsPerOp: saveBest, MemoryBytes: size,
			})

			var loadBest int64
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				if _, _, _, err := touch.DecodeSnapshot(data); err != nil {
					return fmt.Errorf("snapshot-load-%s: %w", label, err)
				}
				if ns := time.Since(start).Nanoseconds(); rep == 0 || ns < loadBest {
					loadBest = ns
				}
			}
			report.Points = append(report.Points, benchPoint{
				Name: "snapshot-load-" + label, Algorithm: string(touch.AlgTOUCH),
				NsPerOp: loadBest, MemoryBytes: size,
			})
		}
		return nil
	}(); err != nil {
		return err
	}

	// Network-path serving: the same query index behind the touchserved
	// HTTP subsystem on loopback. Clients POST pre-encoded query bodies
	// over keep-alive connections; NsPerOp is the mean per-request
	// latency a client sees and QueriesPerS the aggregate qps — read
	// next to range-cN / knn-cN above for the cost of the HTTP boundary.
	srv := server.New(server.Config{MaxInFlight: 256})
	srv.Load("bench", a, touch.TOUCHConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	baseURL := "http://" + ln.Addr().String() + "/v1/datasets/bench/query"

	rangeBodies := make([][]byte, queryShapes)
	knnBodies := make([][]byte, queryShapes)
	for i := 0; i < queryShapes; i++ {
		b := boxes[i]
		rangeBodies[i], _ = json.Marshal(map[string]any{
			"type": "range",
			"box":  []float64{b.Min[0], b.Min[1], b.Min[2], b.Max[0], b.Max[1], b.Max[2]},
		})
		knnBodies[i], _ = json.Marshal(map[string]any{
			"type": "knn", "point": points[i][:], "k": 10,
		})
	}
	httpClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	httpPost := func(body []byte) error {
		resp, err := httpClient.Post(baseURL, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("query status %d", resp.StatusCode)
		}
		return nil
	}
	const httpQueriesPerClient = 512
	for _, mode := range []struct {
		name   string
		bodies [][]byte
	}{{"http-range", rangeBodies}, {"http-knn", knnBodies}} {
		if err := httpPost(mode.bodies[0]); err != nil { // warm connections & probe pool
			return fmt.Errorf("%s: %w", mode.name, err)
		}
		for _, clients := range []int{1, 8} {
			// No allocs/op here: the server's own goroutines dominate the
			// process-wide malloc delta.
			pt, err := measureClients(fmt.Sprintf("%s-c%d", mode.name, clients),
				clients, httpQueriesPerClient, false,
				func(i int) error { return httpPost(mode.bodies[i%queryShapes]) })
			if err != nil {
				return err
			}
			report.Points = append(report.Points, pt)
		}
	}

	// Metrics scrape cost: what one GET /metrics render costs while the
	// server holds a dataset and live counters — the budget a 15-second
	// Prometheus scrape interval draws against. MemoryBytes carries the
	// exposition size.
	{
		metricsURL := "http://" + ln.Addr().String() + "/metrics"
		var scrapeBytes int64
		scrape := func(int) error {
			resp, err := httpClient.Get(metricsURL)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			n, err := io.Copy(io.Discard, resp.Body)
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("metrics status %d", resp.StatusCode)
			}
			scrapeBytes = n
			return nil
		}
		if err := scrape(0); err != nil {
			return fmt.Errorf("metrics-scrape: %w", err)
		}
		pt, err := measureClients("metrics-scrape", 1, 256, false, scrape)
		if err != nil {
			return err
		}
		pt.MemoryBytes = scrapeBytes
		report.Points = append(report.Points, pt)
	}

	// Binary wire serving: the same query index behind the pipelined
	// binary protocol on loopback. The unary modes (bin-range-cN,
	// bin-knn-cN) issue one request per round trip, like the HTTP modes;
	// the pipelined modes keep pipelineDepth requests in flight per
	// connection via Batch, which is where the protocol earns its keep —
	// read bin-range-pipelined-cN next to http-range-cN for the network
	// gap the wire protocol closes.
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.ServeWire(wln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.ShutdownWire(ctx)
	}()
	wireAddr := wln.Addr().String()
	bctx := context.Background()
	dialWire := func(n int) ([]*client.Conn, error) {
		conns := make([]*client.Conn, n)
		for i := range conns {
			c, err := client.Dial(bctx, wireAddr)
			if err != nil {
				return nil, err
			}
			conns[i] = c
		}
		return conns, nil
	}
	closeAll := func(conns []*client.Conn) {
		for _, c := range conns {
			c.Close()
		}
	}

	const binQueriesPerClient = 4096
	binUnary := []struct {
		name    string
		clients []int
		call    func(c *client.Conn, i int) error
	}{
		{"bin-range", []int{1, 8}, func(c *client.Conn, i int) error {
			_, _, err := c.Range(bctx, "bench", boxes[i%queryShapes])
			return err
		}},
		{"bin-knn", []int{1}, func(c *client.Conn, i int) error {
			_, _, err := c.KNN(bctx, "bench", points[i%queryShapes], 10)
			return err
		}},
	}
	for _, mode := range binUnary {
		for _, clients := range mode.clients {
			conns, err := dialWire(clients)
			if err != nil {
				return fmt.Errorf("%s: %w", mode.name, err)
			}
			if err := mode.call(conns[0], 0); err != nil { // warm the probe pool
				closeAll(conns)
				return fmt.Errorf("%s: %w", mode.name, err)
			}
			pt, err := measureClients(fmt.Sprintf("%s-c%d", mode.name, clients),
				clients, binQueriesPerClient, false,
				func(i int) error { return mode.call(conns[i/binQueriesPerClient], i) })
			closeAll(conns)
			if err != nil {
				return err
			}
			report.Points = append(report.Points, pt)
		}
	}

	// Pipelined: each client keeps pipelineDepth requests in flight on
	// one connection and harvests a whole batch per measured op; the
	// recorded point is normalized back to per-query latency and qps.
	const pipelineDepth = 64
	const binBatchesPerClient = 4 * binQueriesPerClient / pipelineDepth
	binPipe := []struct {
		name    string
		clients []int
		queue   func(b *client.Batch, i int) func() error
	}{
		{"bin-range-pipelined", []int{1, 8}, func(b *client.Batch, i int) func() error {
			f := b.Range("bench", boxes[i%queryShapes])
			return func() error { _, _, err := f.Get(bctx); return err }
		}},
		{"bin-knn-pipelined", []int{1}, func(b *client.Batch, i int) func() error {
			f := b.KNN("bench", points[i%queryShapes], 10)
			return func() error { _, _, err := f.Get(bctx); return err }
		}},
	}
	for _, mode := range binPipe {
		for _, clients := range mode.clients {
			conns, err := dialWire(clients)
			if err != nil {
				return fmt.Errorf("%s: %w", mode.name, err)
			}
			batches := make([]*client.Batch, clients)
			gets := make([][]func() error, clients)
			for cl := range batches {
				batches[cl] = conns[cl].Batch()
				gets[cl] = make([]func() error, 0, pipelineDepth)
			}
			runBatch := func(i int) error {
				cl := i / binBatchesPerClient
				b, g := batches[cl], gets[cl][:0]
				for q := 0; q < pipelineDepth; q++ {
					g = append(g, mode.queue(b, i*pipelineDepth+q))
				}
				if err := b.Send(); err != nil {
					return err
				}
				for _, get := range g {
					if err := get(); err != nil {
						return err
					}
				}
				return nil
			}
			if err := runBatch(0); err != nil { // warm connections & probe pool
				closeAll(conns)
				return fmt.Errorf("%s: %w", mode.name, err)
			}
			pt, err := measureClients(fmt.Sprintf("%s-c%d", mode.name, clients),
				clients, binBatchesPerClient, false, runBatch)
			closeAll(conns)
			if err != nil {
				return err
			}
			pt.NsPerOp /= pipelineDepth
			pt.QueriesPerS *= pipelineDepth
			report.Points = append(report.Points, pt)
		}
	}

	// Routed serving: the same pipelined range workload, one network hop
	// further out — client → touchrouter wire front → backend replica.
	// Two replicas serve the bench dataset behind a router with R=2;
	// BaselineNs on router-range-cN carries the direct
	// bin-range-pipelined-cN measurement at the same client count, so
	// the routed/direct ratio (the budget is ≤ 2×) reads straight off
	// the point. router-failover-latency is the wall time from killing
	// the dataset's primary ring owner until a read through the router
	// succeeds again — one failed backend attempt plus the in-call
	// failover to the fallback owner.
	if err := func() error {
		type replica struct {
			srv  *server.Server
			addr string
		}
		replicas := make(map[string]*replica, 2)
		var addrs []string
		for _, id := range []string{"replica-a", "replica-b"} {
			rsrv := server.New(server.Config{NodeID: id})
			rsrv.Load("bench", a, touch.TOUCHConfig{})
			rl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go rsrv.ServeWire(rl)
			replicas[id] = &replica{srv: rsrv, addr: rl.Addr().String()}
			addrs = append(addrs, rl.Addr().String())
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for _, r := range replicas {
				r.srv.ShutdownWire(ctx)
			}
		}()

		rt, err := router.New(router.Config{
			Backends:       addrs,
			Replication:    2,
			HealthInterval: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		rt.Start()
		defer rt.Close()
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go rt.ServeWire(rln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			rt.ShutdownWire(ctx)
		}()
		routerAddr := rln.Addr().String()

		baseline := make(map[int]int64)
		for _, pt := range report.Points {
			switch pt.Name {
			case "bin-range-pipelined-c1":
				baseline[1] = pt.NsPerOp
			case "bin-range-pipelined-c8":
				baseline[8] = pt.NsPerOp
			}
		}

		for _, clients := range []int{1, 8} {
			conns := make([]*client.Conn, clients)
			for i := range conns {
				c, err := client.Dial(bctx, routerAddr)
				if err != nil {
					return fmt.Errorf("router-range: %w", err)
				}
				conns[i] = c
			}
			batches := make([]*client.Batch, clients)
			gets := make([][]func() error, clients)
			for cl := range batches {
				batches[cl] = conns[cl].Batch()
				gets[cl] = make([]func() error, 0, pipelineDepth)
			}
			runBatch := func(i int) error {
				cl := i / binBatchesPerClient
				b, g := batches[cl], gets[cl][:0]
				for q := 0; q < pipelineDepth; q++ {
					f := b.Range("bench", boxes[(i*pipelineDepth+q)%queryShapes])
					g = append(g, func() error { _, _, err := f.Get(bctx); return err })
				}
				if err := b.Send(); err != nil {
					return err
				}
				for _, get := range g {
					if err := get(); err != nil {
						return err
					}
				}
				return nil
			}
			if err := runBatch(0); err != nil { // warm router pools & probe pool
				closeAll(conns)
				return fmt.Errorf("router-range: %w", err)
			}
			pt, err := measureClients(fmt.Sprintf("router-range-c%d", clients),
				clients, binBatchesPerClient, false, runBatch)
			closeAll(conns)
			if err != nil {
				return err
			}
			pt.NsPerOp /= pipelineDepth
			pt.QueriesPerS *= pipelineDepth
			pt.BaselineNs = baseline[clients]
			report.Points = append(report.Points, pt)
		}

		// Kill the primary the way a crash would and time the recovery a
		// caller sees. The first read trips over the dead backend, fails
		// over to the fallback owner inside the same call and ejects the
		// corpse; the measured number is that whole detour.
		owners := rt.Owners("bench")
		primary, ok := replicas[owners[0]]
		if !ok {
			return fmt.Errorf("router-failover-latency: unknown primary %q", owners[0])
		}
		killCtx, killCancel := context.WithCancel(bctx)
		killCancel()
		start := time.Now()
		primary.srv.ShutdownWire(killCtx)
		for {
			if _, _, err := rt.Range(bctx, "bench", boxes[0]); err == nil {
				break
			}
			if time.Since(start) > 5*time.Second {
				return fmt.Errorf("router-failover-latency: no successful read 5s after kill")
			}
		}
		report.Points = append(report.Points, benchPoint{
			Name:      "router-failover-latency",
			Algorithm: string(touch.AlgTOUCH),
			Clients:   1,
			NsPerOp:   time.Since(start).Nanoseconds(),
		})
		return nil
	}(); err != nil {
		return err
	}

	// Incremental updates: what the delta layer costs. update-throughput
	// applies insert/delete batches to a Mutable with background
	// compaction live at the default threshold, so the folding cost is
	// amortized into the number (NsPerOp is per batch, Results the total
	// objects applied). query-under-mutation-cN then measures range qps
	// from N concurrent readers while a writer keeps mutating and
	// compactions keep publishing — read next to range-cN above for the
	// price of querying through the delta overlay instead of a frozen
	// index.
	if err := func() error {
		base := touch.GenerateUniform(sizeA, seed+4)
		m, err := touch.NewMutable(base, touch.TOUCHConfig{})
		if err != nil {
			return err
		}
		const updBatch = 16
		var lastIDs []touch.ID
		ins := make([]touch.Box, updBatch)
		mutate := func(i int) error {
			for j := range ins {
				ins[j] = boxes[(i*updBatch+j)%queryShapes]
			}
			if len(lastIDs) > updBatch/2 {
				m.Delete(lastIDs[:updBatch/2])
			}
			lastIDs, err = m.Insert(ins)
			return err
		}

		const updOpsPerClient = 2048
		pt, err := measureClients("update-throughput", 1, updOpsPerClient, true, mutate)
		if err != nil {
			return err
		}
		pt.Results = int64(updOpsPerClient) * updBatch
		report.Points = append(report.Points, pt)

		// Keep mutating from one writer while the readers run.
		stop := make(chan struct{})
		errc := make(chan error, 1)
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := mutate(i); err != nil {
					errc <- err
					return
				}
			}
		}()
		if _, err := m.RangeQuery(boxes[0]); err != nil {
			return err
		}
		for _, clients := range []int{1, 4} {
			pt, err := measureClients(fmt.Sprintf("query-under-mutation-c%d", clients),
				clients, queriesPerQueryClient, true, func(i int) error {
					_, err := m.RangeQuery(boxes[i%queryShapes])
					return err
				})
			if err != nil {
				close(stop)
				wwg.Wait()
				return err
			}
			report.Points = append(report.Points, pt)
		}
		close(stop)
		wwg.Wait()
		select {
		case err := <-errc:
			return fmt.Errorf("query-under-mutation writer: %w", err)
		default:
		}
		return nil
	}(); err != nil {
		return err
	}

	var out io.Writer = os.Stdout
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		return err
	}
	if jsonPath != "" {
		fmt.Printf("wrote %s (%d points, %d×%d objects)\n",
			jsonPath, len(report.Points), sizeA, sizeB)
	}
	return nil
}
