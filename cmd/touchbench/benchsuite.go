package main

import (
	"encoding/json"
	"fmt"
	"io"

	"os"
	"runtime"
	"sync"
	"time"

	"touch"
	"touch/internal/testutil"
)

// benchPoint is one measured configuration of the fixed-workload suite.
type benchPoint struct {
	Name        string  `json:"name"`
	Algorithm   string  `json:"algorithm"`
	Workers     int     `json:"workers,omitempty"`
	Clients     int     `json:"clients,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	QueriesPerS float64 `json:"queries_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	BuildNs     int64   `json:"build_ns"`
	AssignNs    int64   `json:"assign_ns"`
	JoinNs      int64   `json:"join_ns"`
	Comparisons int64   `json:"comparisons"`
	Results     int64   `json:"results"`
	MemoryBytes int64   `json:"memory_bytes"`
}

// benchReport is the JSON document `make bench` writes to BENCH_N.json.
type benchReport struct {
	GoVersion string       `json:"go_version"`
	CPUs      int          `json:"cpus"`
	Scale     float64      `json:"scale"`
	Seed      int64        `json:"seed"`
	SizeA     int          `json:"size_a"`
	SizeB     int          `json:"size_b"`
	Eps       float64      `json:"eps"`
	Points    []benchPoint `json:"points"`
}

// runBenchSuite joins one uniform workload (the microbenchmark shape of
// bench_test.go: 8K × 24K at the default scale, ε=5) with every
// algorithm, plus the TOUCH core at several worker counts, reporting
// the best of three runs per configuration. The serving sections
// measure concurrent-client throughput (latency and queries/sec) on
// one shared prebuilt index, for whole-dataset joins (serve-cN) and
// for single-probe range and kNN queries (range-cN, knn-cN).
func runBenchSuite(scale float64, seed int64, jsonPath string) error {
	if scale <= 0 {
		scale = 0.02
	}
	sizeA := max(int(400_000*scale), 1)
	sizeB := max(int(1_200_000*scale), 1)
	const eps = 5.0
	a := touch.GenerateUniform(sizeA, seed)
	b := touch.GenerateUniform(sizeB, seed+1)

	report := benchReport{
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Scale:     scale,
		Seed:      seed,
		SizeA:     sizeA,
		SizeB:     sizeB,
		Eps:       eps,
	}

	measure := func(name string, alg touch.Algorithm, workers int) error {
		var best benchPoint
		for rep := 0; rep < 3; rep++ {
			opt := &touch.Options{NoPairs: true}
			opt.TOUCH.Workers = workers
			start := time.Now()
			res, err := touch.DistanceJoin(alg, a, b, eps, opt)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			ns := time.Since(start).Nanoseconds()
			if rep == 0 || ns < best.NsPerOp {
				best = benchPoint{
					Name:        name,
					Algorithm:   string(alg),
					Workers:     workers,
					NsPerOp:     ns,
					BuildNs:     res.Stats.BuildTime.Nanoseconds(),
					AssignNs:    res.Stats.AssignTime.Nanoseconds(),
					JoinNs:      res.Stats.JoinTime.Nanoseconds(),
					Comparisons: res.Stats.Comparisons,
					Results:     res.Stats.Results,
					MemoryBytes: res.Stats.MemoryBytes,
				}
			}
		}
		report.Points = append(report.Points, best)
		return nil
	}

	for _, alg := range touch.Algorithms() {
		if err := measure(string(alg), alg, 0); err != nil {
			return err
		}
	}
	for _, workers := range []int{2, 4, 8} {
		if err := measure(fmt.Sprintf("touch-w%d", workers), touch.AlgTOUCH, workers); err != nil {
			return err
		}
	}

	// Serving throughput: one immutable index shared by N concurrent
	// clients, each drawing pooled probe state per query. NsPerOp is the
	// mean per-query latency a client sees; QueriesPerS the aggregate
	// throughput across clients.
	idx := touch.BuildIndex(a.Expand(eps), touch.TOUCHConfig{})
	probe := b // the index side carries the ε-expansion
	const queriesPerClient = 6
	for warm := 0; warm < 2; warm++ {
		idx.Join(probe, &touch.Options{NoPairs: true}) // populate the probe pool
	}
	for _, clients := range []int{1, 2, 4, 8} {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		var wg sync.WaitGroup
		start := time.Now()
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := 0; q < queriesPerClient; q++ {
					idx.Join(probe, &touch.Options{NoPairs: true})
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		total := clients * queriesPerClient
		report.Points = append(report.Points, benchPoint{
			Name:        fmt.Sprintf("serve-c%d", clients),
			Algorithm:   string(touch.AlgTOUCH),
			Clients:     clients,
			NsPerOp:     wall.Nanoseconds() / int64(queriesPerClient),
			QueriesPerS: float64(total) / wall.Seconds(),
			AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(total),
		})
	}

	// Query serving: the same shared index answers single-probe range
	// and kNN questions from N concurrent clients. Queries are orders of
	// magnitude cheaper than joins, so each client runs a fixed batch of
	// pre-generated queries; NsPerOp is the mean per-query latency and
	// AllocsPerOp the steady-state allocations (the pooled probe scratch
	// should leave only the result slice).
	queryIdx := touch.BuildIndex(a, touch.TOUCHConfig{})
	const queryShapes = 256
	boxes, points, _ := testutil.QueryWorkload(seed+2, queryShapes)
	const queriesPerQueryClient = 4096
	queryModes := []struct {
		name string
		run  func(i int) error
	}{
		{"range", func(i int) error {
			_, err := queryIdx.RangeQuery(boxes[i%queryShapes])
			return err
		}},
		{"knn", func(i int) error {
			_, err := queryIdx.KNN(points[i%queryShapes], 10)
			return err
		}},
	}
	for _, mode := range queryModes {
		if err := mode.run(0); err != nil { // warm the probe pool
			return fmt.Errorf("%s: %w", mode.name, err)
		}
		for _, clients := range []int{1, 4, 8} {
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			start := time.Now()
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					for q := 0; q < queriesPerQueryClient; q++ {
						if err := mode.run(cl*queriesPerQueryClient + q); err != nil {
							errc <- err
							return
						}
					}
				}(cl)
			}
			wg.Wait()
			wall := time.Since(start)
			close(errc)
			for err := range errc {
				return fmt.Errorf("%s-c%d: %w", mode.name, clients, err)
			}
			runtime.ReadMemStats(&ms1)
			total := clients * queriesPerQueryClient
			report.Points = append(report.Points, benchPoint{
				Name:        fmt.Sprintf("%s-c%d", mode.name, clients),
				Algorithm:   string(touch.AlgTOUCH),
				Clients:     clients,
				NsPerOp:     wall.Nanoseconds() / int64(queriesPerQueryClient),
				QueriesPerS: float64(total) / wall.Seconds(),
				AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(total),
			})
		}
	}

	var out io.Writer = os.Stdout
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		return err
	}
	if jsonPath != "" {
		fmt.Printf("wrote %s (%d points, %d×%d objects)\n",
			jsonPath, len(report.Points), sizeA, sizeB)
	}
	return nil
}
