// Command touchbench regenerates the tables and figures of the TOUCH
// paper's evaluation (SIGMOD 2013, §6), and tracks the repository's own
// performance trajectory.
//
// Usage:
//
//	touchbench -list
//	touchbench -exp fig9 [-scale 0.02] [-seed 42] [-algs touch,pbsm-500]
//	touchbench -exp all
//	touchbench -bench -json BENCH_1.json
//
// The -scale flag multiplies the paper's dataset sizes (1.0 = the full
// 1.6M × 9.6M workloads); the default keeps every experiment within
// minutes on a single core. Results print as aligned text tables with
// one row per workload point and one column per algorithm.
//
// The -bench mode runs every algorithm (plus the parallel TOUCH core at
// several worker counts, plus concurrent-client serving throughput on
// one shared index — whole-dataset joins, single-probe range/kNN
// queries, and the same queries through the touchserved HTTP subsystem
// on loopback) on one fixed uniform workload and writes a
// machine-readable JSON summary — per-algorithm wall time, phase times,
// comparisons, results, analytic memory and queries/sec — so successive
// revisions can be diffed (`make bench` writes BENCH_4.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"touch"
	"touch/internal/bench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale    = flag.Float64("scale", 0.02, "dataset scale relative to the paper (0 < scale <= 1)")
		seed     = flag.Int64("seed", 42, "random seed for the dataset generators")
		algs     = flag.String("algs", "", "comma-separated algorithm filter (default: the experiment's set)")
		benchRun = flag.Bool("bench", false, "run the fixed-workload benchmark suite instead of an experiment")
		jsonPath = flag.String("json", "", "write -bench results as JSON to this file (default: stdout)")
	)
	flag.Parse()

	if *benchRun {
		if err := runBenchSuite(*scale, *seed, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "touchbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	rc := bench.RunConfig{Scale: *scale, Seed: *seed}
	if *algs != "" {
		for _, name := range strings.Split(*algs, ",") {
			rc.Algorithms = append(rc.Algorithms, touch.Algorithm(strings.TrimSpace(name)))
		}
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "touchbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    %s\n    scale=%g seed=%d\n", e.Description, *scale, *seed)
		start := time.Now()
		if err := e.Run(rc, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "touchbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
