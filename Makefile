GO ?= go

.PHONY: all build test race vet bench bench-smoke clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench writes the fixed-workload benchmark suite to BENCH_N.json so the
# performance trajectory of successive PRs can be diffed. Bump the file
# number when recording a new baseline next to an old one. BENCH_2 added
# the serving section: per-query latency and queries/sec for concurrent
# clients sharing one prebuilt index. BENCH_3 adds the query-serving
# points: range-cN / knn-cN throughput and allocs/op for single-probe
# queries on the shared index.
BENCH_OUT ?= BENCH_3.json
bench:
	$(GO) run ./cmd/touchbench -bench -json $(BENCH_OUT)

# bench-smoke is the CI-sized run: every testing.B benchmark once.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	rm -f BENCH_*.json
	$(GO) clean ./...
