GO ?= go

.PHONY: all build test race vet bench bench-smoke serve-smoke clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench writes the fixed-workload benchmark suite to BENCH_N.json so the
# performance trajectory of successive PRs can be diffed. Bump the file
# number when recording a new baseline next to an old one. BENCH_2 added
# the serving section: per-query latency and queries/sec for concurrent
# clients sharing one prebuilt index. BENCH_3 adds the query-serving
# points: range-cN / knn-cN throughput and allocs/op for single-probe
# queries on the shared index. BENCH_4 adds the network-path points:
# http-range-cN / http-knn-cN qps through the touchserved HTTP subsystem
# on loopback, next to the in-process numbers. BENCH_5 adds the
# cancellable-execution points: stream-join (whole-dataset join consumed
# off the JoinSeq iterator, pairs/sec) and cancel-latency (time from
# context cancellation to engine quiescence). BENCH_7 adds the binary
# wire-protocol points: bin-range-cN / bin-knn-cN (one request per round
# trip, like HTTP) and bin-*-pipelined-cN (64 requests in flight per
# connection) through the touchserved binary listener on loopback.
# BENCH_8 adds the incremental-update points: update-throughput
# (PATCH-applied insert/delete batches per second against a Mutable) and
# query-under-mutation (range qps while a writer mutates and compactions
# fold in the background). BENCH_9 adds the observability points:
# trace-overhead (the prebuilt-index join with a live span vs the
# nil-span fast path as baseline_ns) and metrics-scrape (one GET
# /metrics render against a serving catalog). BENCH_10 adds the routing
# points: router-range-cN (the pipelined range workload through the
# touchrouter wire front over two replicas, with the direct
# bin-range-pipelined-cN number as baseline_ns — the budget is routed
# ≤ 2× direct) and router-failover-latency (wall time from killing the
# primary ring owner to the first successful read through the router).
BENCH_OUT ?= BENCH_10.json
bench:
	$(GO) run ./cmd/touchbench -bench -json $(BENCH_OUT)

# bench-smoke is the CI-sized run: every testing.B benchmark once.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# serve-smoke boots touchserved on a random port, exercises every query
# shape plus a join and the metrics endpoint over real HTTP with curl,
# and asserts a clean SIGTERM drain.
serve-smoke:
	./scripts/serve-smoke.sh

clean:
	rm -f BENCH_*.json
	$(GO) clean ./...
