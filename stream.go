package touch

import (
	"context"
	"iter"

	"touch/internal/geom"
	"touch/internal/stats"
)

// streamBatchSize is how many pairs the producer buffers before handing
// a batch to the consumer — large enough to amortize the channel
// crossing, small enough that a slow consumer caps the in-flight memory
// at a few kilobytes.
const streamBatchSize = 512

// streamDepth is the channel depth between the join and the consumer:
// a little slack so the engine is not lock-stepped to the consumer,
// while keeping the O(1)-memory promise of a streaming join.
const streamDepth = 4

// streamSink batches emitted pairs onto the consumer channel. It runs
// under the engine's emission serialization (parallel joins funnel all
// workers through one locked sink), so it needs no locking of its own.
// Once the consumer has stopped the join, batches are dropped instead of
// sent — the consumer is only draining at that point.
type streamSink struct {
	ch  chan []Pair
	ctl *stats.Control
	buf []Pair
}

func (s *streamSink) Emit(a, b geom.ID) {
	s.buf = append(s.buf, Pair{A: a, B: b})
	if len(s.buf) >= streamBatchSize {
		s.flush()
	}
}

func (s *streamSink) flush() {
	if len(s.buf) == 0 {
		return
	}
	if !s.ctl.Stopped() {
		s.ch <- s.buf
	}
	s.buf = make([]Pair, 0, streamBatchSize)
}

// streamJoin adapts a push-style join execution into a pull-style
// iterator: the join runs on a producer goroutine and its pairs flow to
// the consumer in batches. Breaking out of the iterator — or reaching
// o.Limit — stops the join at its next checkpoint and drains the
// producer before returning, so no goroutine outlives the loop. A
// context cancellation aborts the join the same way and is surfaced as
// one final (Pair{}, ErrJoinCanceled-wrapped) element.
func streamJoin(ctx context.Context, o *Options, swapped bool, run func(*stats.Control, *Stats, Sink)) iter.Seq2[Pair, error] {
	limit := o.Limit
	return func(yield func(Pair, error) bool) {
		if err := ctx.Err(); err != nil {
			yield(Pair{}, canceled(err))
			return
		}
		ctl := stats.NewControl(ctx.Done())
		ch := make(chan []Pair, streamDepth)
		go func() {
			defer close(ch)
			ss := &streamSink{ch: ch, ctl: ctl}
			var sink Sink = ss
			if swapped {
				sink = stats.FuncSink(func(x, y geom.ID) { ss.Emit(y, x) })
			}
			var c Stats
			run(ctl, &c, sink)
			ss.flush()
			// Trace the engine's work before close(ch) publishes it: the
			// consumer only reads the span after its drain observed the
			// close, so these writes are ordered before any read.
			if t := o.Trace; t != nil {
				t.Record(&c)
				t.SetCancel(ctl.Cause())
			}
		}()
		// Whatever way the loop ends — completion, break, a panic in the
		// loop body — stop the join and drain the channel so the producer
		// can finish and release its probe.
		var delivered int64
		defer func() {
			ctl.Stop()
			for range ch {
			}
			// The engine's own Results counter includes pairs the consumer
			// never saw (emitted before a break/limit stop landed); the
			// span reports what was actually delivered.
			o.Trace.SetResults(delivered)
		}()
		for batch := range ch {
			for _, p := range batch {
				if !yield(p, nil) {
					return
				}
				delivered++
				if limit > 0 {
					if limit--; limit == 0 {
						return
					}
				}
			}
		}
		if err := canceledErr(ctx, ctl); err != nil {
			yield(Pair{}, err)
		}
	}
}

// JoinSeq is the streaming form of SpatialJoinCtx: it returns the result
// pairs as a range-over-func iterator instead of materializing them, so
// arbitrarily large joins run in O(1) result memory. Pairs arrive in the
// engine's emission order (deterministic single-threaded, arbitrary
// under parallelism), each with a nil error; if ctx is canceled
// mid-join the engine aborts cooperatively and the sequence ends with
// one final (Pair{}, err) element where errors.Is(err, ErrJoinCanceled).
// Breaking out of the loop stops the join promptly and cleanly — no
// goroutine or probe state leaks — and Options.Limit truncates the
// sequence after exactly that many pairs. An unknown algorithm yields
// its error as the only element. The iterator itself is the delivery
// path, so the materializing-mode knobs Options.Sink and
// Options.NoPairs are ignored here (as by every JoinSeq variant).
func JoinSeq(ctx context.Context, alg Algorithm, a, b Dataset, opt *Options) iter.Seq2[Pair, error] {
	o := opt.normalized()
	join, err := bind(alg, &o)
	if err != nil {
		return func(yield func(Pair, error) bool) { yield(Pair{}, err) }
	}
	a, b, swapped := o.orderDatasets(a, b)
	return streamJoin(ctx, &o, swapped, func(ctl *stats.Control, c *Stats, sink Sink) {
		dispatch(alg, join, &o, a, b, ctl, c, sink)
	})
}

// JoinSeq is the streaming form of Index.JoinCtx, with the semantics of
// the package-level JoinSeq: pairs are yielded in (index dataset, b)
// orientation as the join produces them, breaking out of the loop or
// cancelling ctx aborts the join cooperatively, Options.Limit truncates
// the sequence exactly, and Options.Sink / Options.NoPairs (knobs of
// the materializing mode) are ignored. Safe for arbitrary concurrent callers
// on a shared Index; each iteration draws its own probe from the pool
// and recycles it when the loop ends, however it ends.
func (ix *Index) JoinSeq(ctx context.Context, b Dataset, opt *Options) iter.Seq2[Pair, error] {
	o := opt.normalized()
	return streamJoin(ctx, &o, false, func(ctl *stats.Control, c *Stats, sink Sink) {
		ix.runProbe(b, o.Workers, ctl, c, sink)
	})
}

// DistanceJoinSeq is JoinSeq with the probe dataset's boxes enlarged by
// eps — the streaming form of Index.DistanceJoinCtx, sharing its
// validation and probe-side expansion. A negative eps yields the
// ErrNegativeDistance-wrapped error as the sequence's only element.
func (ix *Index) DistanceJoinSeq(ctx context.Context, b Dataset, eps float64, opt *Options) iter.Seq2[Pair, error] {
	if err := checkEps(eps); err != nil {
		return func(yield func(Pair, error) bool) { yield(Pair{}, err) }
	}
	return ix.JoinSeq(ctx, b.Expand(eps), opt)
}
